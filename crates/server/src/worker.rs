//! The worker plane: distributed trial leasing over the wire protocol.
//!
//! Three pieces live here:
//!
//! - [`WorkerRegistry`] — the daemon-side ledger of registered workers,
//!   queued jobs, and outstanding leases, with heartbeat-based expiry.
//! - [`RemoteExecutor`] — an [`Executor`] that offers each measurement
//!   to the registry and falls back to its local inner executor when no
//!   worker can (or does) serve it.
//! - [`run_worker`] — the worker-side agent behind
//!   `jtune worker --connect`, pumping `lease`/`complete` loops.
//!
//! # Lease state machine
//!
//! ```text
//!              submit()                lease op
//!   (created) ────────────▶ QUEUED ──────────────▶ ISSUED
//!                             ▲  │                  │  │ complete op
//!        deadline/worker-gone │  │ no eligible      │  └───────▶ DONE
//!        (reissues left)      │  │ worker/draining  │
//!                             └──┼──────────────────┘
//!                                │      deadline/worker-gone/fail
//!                                ▼      (reissue budget exhausted)
//!                            ABANDONED ──▶ measured by the local pool
//! ```
//!
//! Every transition happens under one registry lock. A lease id is
//! issued once and never reused, so a `complete` for an expired lease
//! identifies itself: the id is no longer in the ledger and the result
//! is discarded (the slot was already reissued — first finisher wins,
//! and both finishers compute the identical pure-function measurement
//! anyway).
//!
//! # Determinism
//!
//! Remote execution preserves the byte-identical-trace contract because
//! nothing about *where* a trial ran enters the session's data path:
//! the seed is the positional slot seed, the configuration travels as
//! its canonical flag delta, and the worker runs the same pure
//! simulator function the local pool would. Results re-enter through
//! [`RemoteExecutor::measure`]'s return value exactly where a local
//! measurement would, and the evaluation pool already merges slot
//! results in slot order. Worker-plane telemetry
//! ([`TraceEvent::WorkerRegistered`] and friends) is ephemeral and
//! never serialised.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use jtune_flags::{JvmConfig, Registry};
use jtune_harness::{BackoffPolicy, Executor, ExecutorSpec, Measurement, RetryPolicy};
use jtune_telemetry::{TelemetryBus, TraceEvent};
use jtune_util::SimDuration;

use crate::client::Client;
use crate::net::NetFaultPlan;
use crate::wire::{LeaseOffer, Reconnect, Request, Response, TrialOutcome, WireError};

/// How many times a lost lease is reoffered to workers before the job
/// is abandoned to the local pool.
const MAX_REISSUES: u32 = 2;

/// Granularity of the expiry sweep: waiters re-check deadlines at least
/// this often while blocked.
const REAP_TICK: Duration = Duration::from_millis(100);

/// How long [`WorkerRegistry::drain`] waits for workers to acknowledge
/// the drain (deregister and disconnect) before giving up on them. Keeps
/// daemon shutdown from outliving a wedged worker.
const DRAIN_WAIT: Duration = Duration::from_secs(5);

/// What a `lease` request came back with.
#[derive(Debug)]
pub enum LeaseGrant {
    /// Work: run it and `complete`/`fail` before the deadline.
    Offer(LeaseOffer),
    /// No eligible work right now; poll again.
    Idle,
    /// The daemon is draining; finish in-flight work and disconnect.
    Draining,
}

#[derive(Debug)]
enum JobState {
    Queued,
    // The holding lease id lives in `Ledger::leases` (lease → job); the
    // job side only needs who holds it and until when.
    Issued { wid: u64, deadline: Instant },
    Done(Measurement),
    Abandoned,
}

struct Job {
    sid: u64,
    slot: u64,
    executor: String,
    config: Vec<String>,
    fingerprint: u64,
    seed: u64,
    reissues: u32,
    state: JobState,
}

struct WorkerEntry {
    executor: String,
    slots: u64,
    inflight: u64,
}

impl WorkerEntry {
    /// Can this worker run a job whose executor tag is `tag`?
    fn serves(&self, tag: &str) -> bool {
        tag.strip_prefix(&self.executor)
            .is_some_and(|rest| rest.starts_with(':'))
    }
}

#[derive(Default)]
struct Ledger {
    workers: HashMap<u64, WorkerEntry>,
    jobs: HashMap<u64, Job>,
    /// Job ids awaiting a worker, oldest first.
    queue: VecDeque<u64>,
    /// Outstanding lease id → job id.
    leases: HashMap<u64, u64>,
    draining: bool,
}

impl Ledger {
    fn any_worker_serves(&self, tag: &str) -> bool {
        self.workers.values().any(|w| w.serves(tag))
    }
}

/// The daemon-side ledger of workers, queued jobs, and outstanding
/// leases. All state sits behind one mutex; two condvars signal the two
/// kinds of waiter (long-polling `lease` requests, and
/// [`RemoteExecutor`]s blocked on a result). Expiry needs no reaper
/// thread: every blocked waiter sweeps due deadlines each time it wakes.
pub struct WorkerRegistry {
    ledger: Mutex<Ledger>,
    /// Wakes long-polling `lease` requests when work arrives or the
    /// registry drains.
    work: Condvar,
    /// Wakes result waiters when a job finishes or is abandoned.
    done: Condvar,
    next_wid: AtomicU64,
    next_lease: AtomicU64,
    next_job: AtomicU64,
    lease_timeout: Duration,
    bus: TelemetryBus,
    completed: AtomicU64,
    expired: AtomicU64,
}

impl WorkerRegistry {
    /// A registry issuing leases that expire `lease_timeout` after
    /// issue (extended by heartbeats). Worker-plane events go to `bus`
    /// (they are all ephemeral).
    pub fn new(lease_timeout: Duration, bus: TelemetryBus) -> WorkerRegistry {
        WorkerRegistry {
            ledger: Mutex::new(Ledger::default()),
            work: Condvar::new(),
            done: Condvar::new(),
            next_wid: AtomicU64::new(1),
            next_lease: AtomicU64::new(1),
            next_job: AtomicU64::new(1),
            lease_timeout,
            bus,
            completed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ledger> {
        self.ledger.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Register a worker's capabilities; returns its worker id.
    pub fn register(&self, executor: &str, slots: u64) -> u64 {
        let wid = self.next_wid.fetch_add(1, Ordering::SeqCst);
        self.lock().workers.insert(
            wid,
            WorkerEntry {
                executor: executor.to_string(),
                slots: slots.max(1),
                inflight: 0,
            },
        );
        self.bus.emit(&TraceEvent::WorkerRegistered {
            wid,
            executor: executor.to_string(),
            slots: slots.max(1),
        });
        wid
    }

    /// Remove a worker (graceful `deregister`, or its connection died).
    /// Its outstanding leases are reissued immediately.
    pub fn deregister(&self, wid: u64) {
        let mut ledger = self.lock();
        if ledger.workers.remove(&wid).is_none() {
            return;
        }
        let lost: Vec<u64> = ledger
            .leases
            .iter()
            .filter(|(_, jid)| {
                matches!(ledger.jobs.get(jid).map(|j| &j.state),
                         Some(JobState::Issued { wid: w, .. }) if *w == wid)
            })
            .map(|(lease, _)| *lease)
            .collect();
        for lease in lost {
            self.expire_lease(&mut ledger, lease, "worker-gone");
        }
        self.work.notify_all();
        self.done.notify_all();
    }

    /// Reissue (or abandon) the job behind one outstanding lease.
    /// Caller holds the ledger lock.
    fn expire_lease(&self, ledger: &mut Ledger, lease: u64, reason: &str) {
        let Some(jid) = ledger.leases.remove(&lease) else {
            return;
        };
        let can_requeue = !ledger.draining && {
            let job = &ledger.jobs[&jid];
            job.reissues < MAX_REISSUES && ledger.any_worker_serves(&job.executor)
        };
        let Some(job) = ledger.jobs.get_mut(&jid) else {
            return;
        };
        let wid = match job.state {
            JobState::Issued { wid, .. } => wid,
            _ => return,
        };
        if let Some(worker) = ledger.workers.get_mut(&wid) {
            worker.inflight = worker.inflight.saturating_sub(1);
        }
        job.reissues += 1;
        if can_requeue {
            job.state = JobState::Queued;
            ledger.queue.push_front(jid);
        } else {
            job.state = JobState::Abandoned;
        }
        self.expired.fetch_add(1, Ordering::SeqCst);
        self.bus.emit(&TraceEvent::LeaseExpired {
            lease,
            wid,
            reason: reason.to_string(),
        });
    }

    /// Sweep due deadlines. Caller holds the ledger lock.
    fn reap(&self, ledger: &mut Ledger, now: Instant) {
        let due: Vec<u64> = ledger
            .leases
            .iter()
            .filter(|(_, jid)| {
                matches!(ledger.jobs.get(jid).map(|j| &j.state),
                         Some(JobState::Issued { deadline, .. }) if *deadline <= now)
            })
            .map(|(lease, _)| *lease)
            .collect();
        if due.is_empty() {
            return;
        }
        for lease in due {
            self.expire_lease(ledger, lease, "deadline");
        }
        self.work.notify_all();
        self.done.notify_all();
    }

    /// Serve a worker's `lease` request, long-polling up to `wait`.
    pub fn lease(&self, wid: u64, wait: Duration) -> Result<LeaseGrant, WireError> {
        let poll_deadline = Instant::now() + wait;
        let mut ledger = self.lock();
        loop {
            let now = Instant::now();
            self.reap(&mut ledger, now);
            if ledger.draining {
                return Ok(LeaseGrant::Draining);
            }
            let Some(entry) = ledger.workers.get(&wid) else {
                return Err(WireError::new(
                    "unknown-worker",
                    format!("no worker {wid} (register first)"),
                ));
            };
            if entry.inflight < entry.slots {
                let position = ledger
                    .queue
                    .iter()
                    .position(|jid| entry.serves(&ledger.jobs[jid].executor));
                if let Some(position) = position {
                    let jid = ledger.queue.remove(position).expect("position is valid");
                    let lease = self.next_lease.fetch_add(1, Ordering::SeqCst);
                    let deadline = now + self.lease_timeout;
                    ledger.leases.insert(lease, jid);
                    ledger
                        .workers
                        .get_mut(&wid)
                        .expect("checked above")
                        .inflight += 1;
                    let job = ledger.jobs.get_mut(&jid).expect("queued job exists");
                    job.state = JobState::Issued { wid, deadline };
                    let offer = LeaseOffer {
                        lease,
                        sid: job.sid,
                        slot: job.slot,
                        seed: job.seed,
                        fingerprint: job.fingerprint,
                        executor: job.executor.clone(),
                        deadline_ms: self.lease_timeout.as_millis() as u64,
                        config: job.config.clone(),
                    };
                    self.bus.emit(&TraceEvent::TrialLeased {
                        lease,
                        sid: offer.sid,
                        wid,
                        fingerprint: offer.fingerprint,
                    });
                    return Ok(LeaseGrant::Offer(offer));
                }
            }
            let now = Instant::now();
            if now >= poll_deadline {
                return Ok(LeaseGrant::Idle);
            }
            let tick = (poll_deadline - now).min(REAP_TICK);
            ledger = self
                .work
                .wait_timeout(ledger, tick)
                .map(|(g, _)| g)
                .unwrap_or_else(|p| {
                    let (g, _) = p.into_inner();
                    g
                });
        }
    }

    /// Accept a finished trial. A stale lease (already expired and
    /// reissued) is acknowledged and discarded — first finisher wins.
    pub fn complete(&self, wid: u64, lease: u64, measurement: Measurement) {
        let mut ledger = self.lock();
        let Some(jid) = ledger.leases.remove(&lease) else {
            return; // stale: the slot was reissued
        };
        if let Some(worker) = ledger.workers.get_mut(&wid) {
            worker.inflight = worker.inflight.saturating_sub(1);
        }
        if let Some(job) = ledger.jobs.get_mut(&jid) {
            job.state = JobState::Done(measurement);
        }
        self.completed.fetch_add(1, Ordering::SeqCst);
        self.done.notify_all();
    }

    /// A worker returned a lease it cannot run; reissue it right away
    /// (counts against the job's reissue budget).
    pub fn fail(&self, wid: u64, lease: u64, _reason: &str) {
        let mut ledger = self.lock();
        // Only the current holder may fail its lease.
        let held = ledger.leases.get(&lease).is_some_and(|jid| {
            matches!(ledger.jobs.get(jid).map(|j| &j.state),
                     Some(JobState::Issued { wid: w, .. }) if *w == wid)
        });
        if held {
            self.expire_lease(&mut ledger, lease, "failed");
            self.work.notify_all();
            self.done.notify_all();
        }
    }

    /// Extend the deadlines of a worker's in-flight leases; returns how
    /// many were extended (stale ids are skipped).
    pub fn heartbeat(&self, wid: u64, leases: &[u64]) -> u64 {
        let mut ledger = self.lock();
        let now = Instant::now();
        let mut extended = 0;
        for lease in leases {
            let Some(jid) = ledger.leases.get(lease).copied() else {
                continue;
            };
            if let Some(job) = ledger.jobs.get_mut(&jid) {
                if let JobState::Issued {
                    wid: w, deadline, ..
                } = &mut job.state
                {
                    if *w == wid {
                        *deadline = now + self.lease_timeout;
                        extended += 1;
                    }
                }
            }
        }
        extended
    }

    /// Stop offering work: queued jobs fall back to the local pool
    /// immediately; in-flight leases may still complete (graceful), and
    /// long-polling workers are told to disconnect. Blocks (bounded by
    /// `DRAIN_WAIT`) until every worker has acknowledged the drain by
    /// deregistering — so by the time this returns, their `Draining`
    /// replies are on the wire and shutdown cannot race them.
    pub fn drain(&self) {
        let mut ledger = self.lock();
        ledger.draining = true;
        while let Some(jid) = ledger.queue.pop_front() {
            if let Some(job) = ledger.jobs.get_mut(&jid) {
                job.state = JobState::Abandoned;
            }
        }
        self.work.notify_all();
        self.done.notify_all();
        let give_up = Instant::now() + DRAIN_WAIT;
        while !ledger.workers.is_empty() {
            let now = Instant::now();
            if now >= give_up {
                break;
            }
            let (guard, _) = self
                .done
                .wait_timeout(ledger, (give_up - now).min(REAP_TICK))
                .unwrap_or_else(|p| p.into_inner());
            ledger = guard;
        }
    }

    /// Offer a trial to the worker pool. `None` when no registered
    /// worker can serve `executor` (or the registry is draining) — the
    /// caller measures locally.
    fn submit(
        &self,
        sid: u64,
        slot: u64,
        executor: String,
        config: Vec<String>,
        fingerprint: u64,
        seed: u64,
    ) -> Option<u64> {
        let mut ledger = self.lock();
        if ledger.draining || !ledger.any_worker_serves(&executor) {
            return None;
        }
        let jid = self.next_job.fetch_add(1, Ordering::SeqCst);
        ledger.jobs.insert(
            jid,
            Job {
                sid,
                slot,
                executor,
                config,
                fingerprint,
                seed,
                reissues: 0,
                state: JobState::Queued,
            },
        );
        ledger.queue.push_back(jid);
        self.work.notify_all();
        Some(jid)
    }

    /// Block until job `jid` finishes remotely (`Some`) or is abandoned
    /// to the local pool (`None`). Each wakeup sweeps due deadlines, so
    /// waiters double as the expiry reaper.
    fn await_result(&self, jid: u64) -> Option<Measurement> {
        let mut ledger = self.lock();
        loop {
            self.reap(&mut ledger, Instant::now());
            let job = ledger.jobs.get(&jid)?;
            match &job.state {
                JobState::Done(_) | JobState::Abandoned => break,
                JobState::Queued => {
                    // The worker pool shrank (or drained) under us.
                    if ledger.draining || !ledger.any_worker_serves(&job.executor) {
                        if let Some(position) = ledger.queue.iter().position(|q| *q == jid) {
                            ledger.queue.remove(position);
                        }
                        ledger.jobs.get_mut(&jid).expect("checked above").state =
                            JobState::Abandoned;
                        break;
                    }
                }
                JobState::Issued { .. } => {}
            }
            ledger = self
                .done
                .wait_timeout(ledger, REAP_TICK)
                .map(|(g, _)| g)
                .unwrap_or_else(|p| {
                    let (g, _) = p.into_inner();
                    g
                });
        }
        match ledger.jobs.remove(&jid)?.state {
            JobState::Done(measurement) => Some(measurement),
            _ => None,
        }
    }

    /// Registered workers right now.
    pub fn workers(&self) -> usize {
        self.lock().workers.len()
    }

    /// Trials completed by remote workers since start.
    pub fn leases_completed(&self) -> u64 {
        self.completed.load(Ordering::SeqCst)
    }

    /// Leases expired/reissued (deadline, worker death, or `fail`).
    pub fn leases_expired(&self) -> u64 {
        self.expired.load(Ordering::SeqCst)
    }
}

/// An [`Executor`] that drains measurements into the worker pool.
///
/// Wraps the local executor the session would otherwise run on. Each
/// `measure` call offers the trial to the [`WorkerRegistry`]; if no
/// worker can serve it — or every lease for it is lost — the inner
/// executor measures locally, so a daemon with zero workers behaves
/// exactly like before. `describe`/`registry`/`fixed_overhead` delegate
/// to the inner executor: the memo tag, the journal resume signature,
/// and the budget economics are identical wherever the trial runs.
pub struct RemoteExecutor {
    inner: Box<dyn Executor>,
    registry: Arc<WorkerRegistry>,
    sid: u64,
    /// Monotonic per-session trial counter, used as the lease's
    /// diagnostic `slot` field.
    trials: AtomicU64,
}

impl RemoteExecutor {
    /// Wrap `inner`, offering trials for session `sid` to `registry`.
    pub fn new(
        inner: Box<dyn Executor>,
        registry: Arc<WorkerRegistry>,
        sid: u64,
    ) -> RemoteExecutor {
        RemoteExecutor {
            inner,
            registry,
            sid,
            trials: AtomicU64::new(0),
        }
    }
}

impl Executor for RemoteExecutor {
    fn measure(&self, config: &JvmConfig, seed: u64) -> Measurement {
        let slot = self.trials.fetch_add(1, Ordering::SeqCst);
        let offered = self.registry.submit(
            self.sid,
            slot,
            self.inner.describe(),
            config.to_args(self.inner.registry()),
            config.fingerprint(),
            seed,
        );
        match offered.and_then(|jid| self.registry.await_result(jid)) {
            Some(measurement) => measurement,
            None => self.inner.measure(config, seed),
        }
    }

    fn registry(&self) -> &Registry {
        self.inner.registry()
    }

    fn fixed_overhead(&self) -> SimDuration {
        self.inner.fixed_overhead()
    }

    fn describe(&self) -> String {
        self.inner.describe()
    }
}

/// Options for the worker agent (`jtune worker`).
#[derive(Clone, Debug)]
pub struct WorkerOptions {
    /// Daemon address, e.g. `127.0.0.1:7171`.
    pub addr: String,
    /// Concurrent trial slots to offer (each runs its own lease loop).
    pub slots: usize,
    /// Long-poll bound passed with each `lease` request, milliseconds.
    pub wait_ms: u64,
    /// Executor capability tag to register (only `"sim"` today).
    pub capability: String,
    /// Reconnect attempts per outage before giving up. Each successful
    /// registration refreshes the budget, so a worker under recurring
    /// connection loss (chaos, flaky network) keeps coming back instead
    /// of exiting on the first drop.
    pub retries: u32,
    /// Cap on one reconnect backoff delay, milliseconds.
    pub retry_max_ms: u64,
    /// Seeded network-fault plan applied to this worker's outbound
    /// frames (chaos testing); inactive by default.
    pub net_faults: NetFaultPlan,
}

impl WorkerOptions {
    /// Defaults: 1 slot, 500 ms long-poll, `sim` capability, 5
    /// reconnect attempts backing off to 5 s, chaos off.
    pub fn new(addr: impl Into<String>) -> WorkerOptions {
        WorkerOptions {
            addr: addr.into(),
            slots: 1,
            wait_ms: 500,
            capability: "sim".into(),
            retries: 5,
            retry_max_ms: 5_000,
            net_faults: NetFaultPlan::inactive(),
        }
    }

    /// The reconnect backoff schedule these options describe.
    fn backoff(&self) -> BackoffPolicy {
        BackoffPolicy {
            retry: RetryPolicy {
                max_retries: self.retries,
                backoff: 2.0,
            },
            base_ms: 100,
            cap_ms: self.retry_max_ms.max(1),
            seed: self.net_faults.seed,
        }
    }
}

/// What a worker did before draining.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerStats {
    /// The worker id the daemon issued.
    pub wid: u64,
    /// Trials measured and streamed back.
    pub completed: u64,
    /// Leases returned with `fail`.
    pub failed: u64,
}

/// Run a worker until the daemon drains or stays away.
///
/// Registers, then runs `slots` lease loops, each on its own connection
/// (frames on one connection are strictly request/reply). A lease whose
/// executor tag the worker cannot rebuild is returned with `fail`;
/// everything else is measured with the executor stack
/// [`ExecutorSpec::named`] builds from the tag — the same pure function
/// the daemon's local pool runs — and streamed back losslessly.
///
/// Exits cleanly (returning stats) when the daemon answers `draining`;
/// on the way out it deregisters so in-flight bookkeeping is released
/// immediately. A *lost* connection is not an exit: the worker
/// reconnects with jittered exponential backoff (per
/// [`WorkerOptions::retries`]/[`WorkerOptions::retry_max_ms`]),
/// re-registering with its previous worker id so the daemon releases
/// the dead identity's leases at once and counts the reconnect. The
/// retry budget refreshes on every successful registration; only an
/// outage that exhausts a whole budget makes the worker give up.
pub fn run_worker(options: &WorkerOptions) -> Result<WorkerStats, WireError> {
    let completed = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let policy = options.backoff();
    let mut prev_wid: Option<u64> = None;
    // Connection index into the fault plan's schedule, monotonic across
    // reconnects so each fresh connection draws a fresh fault sequence.
    let mut conn_seq: u64 = 0;
    let mut outage_attempt: u32 = 0;
    loop {
        match run_worker_session(
            options,
            prev_wid,
            outage_attempt,
            &completed,
            &failed,
            &mut conn_seq,
        ) {
            Ok((wid, true)) => {
                return Ok(WorkerStats {
                    wid,
                    completed: completed.load(Ordering::SeqCst),
                    failed: failed.load(Ordering::SeqCst),
                })
            }
            Ok((wid, false)) => {
                // Connection lost mid-run: reconnect as a successor of
                // this identity, with a fresh outage budget.
                prev_wid = Some(wid);
                outage_attempt = 0;
            }
            Err(e) => {
                if !policy.should_retry(outage_attempt) {
                    return Err(e);
                }
            }
        }
        let delay = policy.delay_ms(outage_attempt, None);
        outage_attempt += 1;
        std::thread::sleep(Duration::from_millis(delay));
    }
}

/// One connected stretch of a worker's life: register (naming the
/// previous identity when reconnecting), run the lease loops until
/// drain or connection loss. Returns `(wid, drained)` — `drained` false
/// means the connection died and the caller should reconnect.
fn run_worker_session(
    options: &WorkerOptions,
    prev_wid: Option<u64>,
    outage_attempt: u32,
    completed: &AtomicU64,
    failed: &AtomicU64,
    conn_seq: &mut u64,
) -> Result<(u64, bool), WireError> {
    let mut connect = || -> Result<Client, WireError> {
        let conn = *conn_seq;
        *conn_seq += 1;
        let mut client = Client::connect_chaotic(&options.addr, options.net_faults, conn)
            .map_err(|e| WireError::new("connect-error", format!("cannot connect: {e}")))?;
        // A reply the network ate must surface as an error (and a
        // reconnect), not block this slot forever. The daemon answers a
        // lease poll within `wait_ms`; everything else is immediate.
        client
            .set_io_timeout(Duration::from_millis(options.wait_ms + 5_000))
            .map_err(|e| WireError::new("connect-error", format!("cannot set deadline: {e}")))?;
        Ok(client)
    };
    let mut control = connect()?;
    let reconnect = prev_wid.map(|p| Reconnect {
        prev_wid: p,
        attempts: outage_attempt as u64 + 1,
    });
    let wid = match control.request(&Request::Register {
        executor: options.capability.clone(),
        slots: options.slots.max(1) as u64,
        reconnect,
    })? {
        Response::WorkerAck { wid } => wid,
        other => {
            return Err(WireError::new(
                "bad-frame",
                format!("unexpected register reply: {other:?}"),
            ))
        }
    };
    // Slot 0's loop runs on the registering connection — the daemon
    // ties the worker's lifetime to it, so a killed worker process is
    // deregistered (and its leases reissued) the moment the socket
    // drops. Extra slots each get their own connection: frames on one
    // connection are strictly request/reply.
    let mut extra: Vec<Client> = Vec::new();
    for _ in 1..options.slots.max(1) {
        extra.push(connect()?);
    }
    let drained = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for mut client in extra.drain(..) {
            let completed = &completed;
            let failed = &failed;
            let options = &options;
            let drained = &drained;
            scope.spawn(move || {
                run_lease_loop(&mut client, wid, options, completed, failed, drained);
            });
        }
        run_lease_loop(&mut control, wid, options, completed, failed, &drained);
    });
    if drained.load(Ordering::SeqCst) {
        let _ = control.request(&Request::Deregister { wid });
        return Ok((wid, true));
    }
    Ok((wid, false))
}

/// One slot's lease loop: poll, execute, stream back; stop on drain
/// (flagging `drained`) or a dead connection.
fn run_lease_loop(
    client: &mut Client,
    wid: u64,
    options: &WorkerOptions,
    completed: &AtomicU64,
    failed: &AtomicU64,
    drained: &AtomicBool,
) {
    // Executors are rebuilt only when the tag changes (one session's
    // leases all share a tag).
    let mut cache: Option<(String, Box<dyn Executor>)> = None;
    loop {
        let grant = match client.request(&Request::Lease {
            wid,
            wait_ms: options.wait_ms,
        }) {
            Ok(Response::Leased(offer)) => offer,
            Ok(Response::Idle { draining: false }) => continue,
            Ok(Response::Idle { draining: true }) => {
                drained.store(true, Ordering::SeqCst);
                return;
            }
            Err(e) if e.code == "unknown-worker" => {
                // The daemon forgot us (restart, lease-side deregister):
                // treat like a dead connection so the reconnect loop
                // re-registers.
                return;
            }
            Ok(_) | Err(_) => return, // daemon gone or confused: reconnect
        };
        let reply = match execute_lease(&grant, &mut cache, options, wid) {
            Ok(outcome) => {
                completed.fetch_add(1, Ordering::SeqCst);
                Request::Complete {
                    wid,
                    lease: grant.lease,
                    outcome,
                }
            }
            Err(reason) => {
                failed.fetch_add(1, Ordering::SeqCst);
                Request::Fail {
                    wid,
                    lease: grant.lease,
                    reason,
                }
            }
        };
        if client.request(&reply).is_err() {
            return;
        }
    }
}

/// Rebuild the lease's executor and configuration, measure, and wrap
/// the result for the wire. Errors become `fail` reasons.
fn execute_lease(
    offer: &LeaseOffer,
    cache: &mut Option<(String, Box<dyn Executor>)>,
    options: &WorkerOptions,
    wid: u64,
) -> Result<TrialOutcome, String> {
    if cache.as_ref().map(|(tag, _)| tag.as_str()) != Some(offer.executor.as_str()) {
        let spec = ExecutorSpec::named(&offer.executor)?;
        let built = spec.build();
        if built.describe() != offer.executor {
            return Err(format!(
                "rebuilt executor tag {:?} does not match lease tag {:?}",
                built.describe(),
                offer.executor
            ));
        }
        *cache = Some((offer.executor.clone(), built));
    }
    let (_, executor) = cache.as_ref().expect("just populated");
    let config = JvmConfig::parse_args(executor.registry(), &offer.config)
        .map_err(|e| format!("bad config args: {e:?}"))?;
    if config.fingerprint() != offer.fingerprint {
        return Err(format!(
            "config fingerprint mismatch: rebuilt {:#x}, leased {:#x}",
            config.fingerprint(),
            offer.fingerprint
        ));
    }
    // Long trials (a real JVM under ProcessExecutor) would outlive the
    // lease deadline, so a sidecar connection heartbeats while we
    // measure. The simulator finishes in microseconds; skip the sidecar
    // for short deadlines to keep the common path allocation-free.
    let measurement = if offer.deadline_ms >= 2_000 {
        let running = AtomicBool::new(true);
        let interval = Duration::from_millis(offer.deadline_ms / 3);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut beat = match Client::connect(&options.addr) {
                    Ok(c) => c,
                    Err(_) => return,
                };
                // A lost heartbeat ack must not pin this sidecar (and
                // with it the whole lease scope) past the measurement.
                if beat
                    .set_io_timeout(Duration::from_millis(2_000))
                    .is_err()
                {
                    return;
                }
                while running.load(Ordering::SeqCst) {
                    std::thread::sleep(interval.min(Duration::from_millis(250)));
                    if !running.load(Ordering::SeqCst) {
                        return;
                    }
                    if beat
                        .request(&Request::Heartbeat {
                            wid,
                            leases: vec![offer.lease],
                        })
                        .is_err()
                    {
                        return;
                    }
                }
            });
            let m = executor.measure(&config, offer.seed);
            running.store(false, Ordering::SeqCst);
            m
        })
    } else {
        executor.measure(&config, offer.seed)
    };
    Ok(TrialOutcome::from_measurement(&measurement))
}
