//! Wire-protocol micro-benchmarks: the per-frame cost of the typed
//! request/response API the daemon, client, and workers all speak.
//!
//! Three groups, matching the layers a frame crosses:
//!
//! - `encode/*` — rendering typed [`Request`]s and [`Response`]s to
//!   their canonical JSONL frames (the single encode path).
//! - `decode/*` — parsing frames back into the typed enums (the single
//!   decode path, shared by server dispatch and client/worker replies).
//! - `dispatch/*` — the full both-ends round trip one worker-plane
//!   frame pays: render request, parse request (server dispatch),
//!   render reply, parse response.
//!
//! `cargo bench -p jtune-bench --bench wire -- --json PATH` snapshots
//! the results (the committed `BENCH_7.json`).

use std::hint::black_box;

use jtune_server::wire::{
    parse_request, parse_response, render_reply, render_request, render_response,
};
use jtune_server::{LeaseOffer, Request, Response, SessionSpec, TrialOutcome};

/// A representative lease offer: a mid-search configuration delta of the
/// size the hierarchical manipulators typically propose.
fn sample_offer(lease: u64) -> LeaseOffer {
    LeaseOffer {
        lease,
        sid: 3,
        slot: lease % 4,
        seed: 0x5EED_0000 + lease,
        fingerprint: 0xFEED_FACE_CAFE_F00D ^ lease,
        executor: "sim:compress".to_string(),
        deadline_ms: 10_000,
        config: vec![
            "-XX:+UseParallelGC".to_string(),
            "-XX:-UseSerialGC".to_string(),
            "-XX:MaxHeapSize=268435456".to_string(),
            "-XX:NewRatio=3".to_string(),
            "-XX:SurvivorRatio=6".to_string(),
            "-XX:ParallelGCThreads=4".to_string(),
            "-XX:+UseCompressedOops".to_string(),
            "-XX:TieredStopAtLevel=4".to_string(),
        ],
    }
}

/// A representative successful trial outcome (full counter set — the
/// dominant `complete` payload).
fn sample_outcome(index: u64) -> TrialOutcome {
    TrialOutcome {
        time_ns: 2_310_000_000 + index,
        pause_p99_ns: Some(18_400_000),
        gc_pause_ns: Some(120_500_000),
        gc_collections: Some(18),
        jit_ns: Some(45_200_000),
        jit_compiles: Some(310),
        error_kind: None,
        error: None,
    }
}

/// The request mix one remote trial generates: a submit for scale, then
/// the worker-plane lease/complete/heartbeat cycle.
fn sample_requests(index: u64) -> Vec<Request> {
    vec![
        Request::Submit(SessionSpec {
            program: "compress".to_string(),
            budget_mins: 200,
            seed: 42,
            max_evaluations: None,
            screen_ratio: None,
            technique: None,
        }),
        Request::Lease {
            wid: 7,
            wait_ms: 500,
        },
        Request::Complete {
            wid: 7,
            lease: index,
            outcome: sample_outcome(index),
        },
        Request::Heartbeat {
            wid: 7,
            leases: vec![index, index + 1],
        },
    ]
}

/// The reply mix those requests draw: sid ack, a full lease offer, lease
/// ack, heartbeat ack.
fn sample_responses(index: u64) -> Vec<Response> {
    vec![
        Response::Sid { sid: 3 },
        Response::Leased(sample_offer(index)),
        Response::LeaseAck { lease: index },
        Response::HeartbeatAck { leases: 2 },
    ]
}

/// Rendering typed requests and responses to JSONL frames.
fn encode(h: &jtune_bench::BenchHarness) {
    const FRAMES: u64 = 1_000;
    let requests = sample_requests(11);
    let responses = sample_responses(11);
    h.bench("encode/request_4x1k", 30, || {
        let mut bytes = 0usize;
        for _ in 0..FRAMES {
            for r in &requests {
                bytes += render_request(black_box(r)).len();
            }
        }
        bytes
    });
    h.bench("encode/response_4x1k", 30, || {
        let mut bytes = 0usize;
        for _ in 0..FRAMES {
            for r in &responses {
                bytes += render_response(black_box(r)).len();
            }
        }
        bytes
    });
}

/// Parsing frames back into the typed enums.
fn decode(h: &jtune_bench::BenchHarness) {
    const FRAMES: u64 = 1_000;
    let request_lines: Vec<String> = sample_requests(11).iter().map(render_request).collect();
    let response_lines: Vec<String> = sample_responses(11)
        .iter()
        .map(|r| render_reply(&Ok(r.clone())))
        .collect();
    h.bench("decode/request_4x1k", 30, || {
        let mut ops = 0usize;
        for _ in 0..FRAMES {
            for line in &request_lines {
                parse_request(black_box(line)).expect("canonical frame parses");
                ops += 1;
            }
        }
        ops
    });
    h.bench("decode/response_4x1k", 30, || {
        let mut ops = 0usize;
        for _ in 0..FRAMES {
            for line in &response_lines {
                parse_response(black_box(line)).expect("canonical frame parses");
                ops += 1;
            }
        }
        ops
    });
}

/// The full both-ends cost of one worker-plane frame exchange: worker
/// renders a request, server parses it (typed dispatch), server renders
/// the reply, worker parses the response.
fn dispatch(h: &jtune_bench::BenchHarness) {
    const CYCLES: u64 = 1_000;
    h.bench("dispatch/lease_cycle_1k", 30, || {
        let mut ops = 0usize;
        for i in 0..CYCLES {
            let line = render_request(&black_box(Request::Lease {
                wid: 7,
                wait_ms: 500,
            }));
            let request = parse_request(&line).expect("lease parses");
            let reply = match request {
                Request::Lease { .. } => Ok(Response::Leased(sample_offer(i))),
                _ => unreachable!("only lease frames in this loop"),
            };
            let wire = render_reply(&reply);
            parse_response(&wire).expect("offer parses");
            ops += 1;
        }
        ops
    });
    h.bench("dispatch/complete_cycle_1k", 30, || {
        let mut ops = 0usize;
        for i in 0..CYCLES {
            let line = render_request(&black_box(Request::Complete {
                wid: 7,
                lease: i,
                outcome: sample_outcome(i),
            }));
            let request = parse_request(&line).expect("complete parses");
            let reply = match request {
                Request::Complete { lease, outcome, .. } => {
                    // The server-side work a `complete` frame triggers
                    // before the ack: reconstruct the measurement.
                    outcome
                        .to_measurement()
                        .map(|_| Response::LeaseAck { lease })
                }
                _ => unreachable!("only complete frames in this loop"),
            };
            let wire = render_reply(&reply);
            parse_response(&wire).expect("ack parses");
            ops += 1;
        }
        ops
    });
}

fn main() {
    let h = jtune_bench::BenchHarness::from_args();
    encode(&h);
    decode(&h);
    dispatch(&h);
    h.finish("wire");
}
