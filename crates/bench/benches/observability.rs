//! Observability micro-benchmarks: the cost of watching a session.
//!
//! Four groups, matching the layers a trial event crosses:
//!
//! - `trace_sink/*` — serialising trial events through a [`JsonlSink`]
//!   (the per-event overhead every traced session pays).
//! - `span_event/*` — emitting ephemeral phase spans on a live bus,
//!   against the spans-off baseline (which must be near-free).
//! - `histogram/*` — recording into the metrics registry's fixed-bucket
//!   wall histograms.
//! - `report/*` — replaying a real session trace into a summary and
//!   rendering it as Markdown and HTML (`jtune report`'s hot path).
//!
//! `cargo bench -p jtune-bench --bench observability -- --json PATH`
//! snapshots the results (the committed `BENCH_6.json`).

use std::hint::black_box;
use std::sync::Arc;

use autotuner_core::Tuner;
use jtune_bench::{bench_tuner_options, BenchHarness};
use jtune_harness::SimExecutor;
use jtune_telemetry::{JsonlSink, MetricsRegistry, TelemetryBus, TraceEvent};
use jtune_workloads::workload_by_name;

/// A representative successful trial event (the dominant event kind in
/// any real trace).
fn sample_trial(index: u64) -> TraceEvent {
    TraceEvent::TrialEvaluated {
        index,
        technique: "ensemble:pattern".to_string(),
        delta: vec![
            "-XX:+UseSerialGC".to_string(),
            "-XX:-UseParallelGC".to_string(),
            "-XX:MaxHeapSize=268435456".to_string(),
        ],
        repeat_secs: vec![2.31, 2.28, 2.35],
        score_secs: Some(2.31),
        cost_secs: 6.94,
        budget_spent_secs: 6.94 * (index + 1) as f64,
        gc_pause_total_ms: Some(120.5),
        gc_collections: Some(18),
        jit_compile_ms: Some(45.2),
        jit_compiles: Some(310),
        error: None,
        error_kind: None,
    }
}

/// Per-event cost of the JSONL trace sink (serialise + buffered write).
fn trace_sink_overhead(h: &BenchHarness, dir: &std::path::Path) {
    const EVENTS: u64 = 1_000;
    let sink = JsonlSink::create(dir.join("bench-sink.jsonl")).expect("temp trace file");
    let mut bus = TelemetryBus::new();
    bus.add(Arc::new(sink));
    let mut next = 0u64;
    h.bench("trace_sink/event_write_1k", 30, || {
        for _ in 0..EVENTS {
            bus.emit(&black_box(sample_trial(next)));
            next += 1;
        }
    });
}

/// Span emission on a live bus, versus the spans-off no-op path.
fn span_event_overhead(h: &BenchHarness) {
    const SPANS: u64 = 1_000;
    let metrics = Arc::new(MetricsRegistry::new());
    let on = TelemetryBus::new()
        .with(Arc::clone(&metrics) as Arc<dyn jtune_telemetry::TuningObserver>)
        .with_spans(true);
    let off = TelemetryBus::new()
        .with(metrics as Arc<dyn jtune_telemetry::TuningObserver>)
        .with_spans(false);
    h.bench("span_event/emit_1k", 30, || {
        for round in 0..SPANS {
            let _guard = black_box(on.span("bench", round));
        }
    });
    h.bench("span_event/disabled_1k", 30, || {
        for round in 0..SPANS {
            let _guard = black_box(off.span("bench", round));
        }
    });
}

/// Recording into a fixed-bucket wall histogram (the `stats` command's
/// data source; sits on the server's per-frame path).
fn histogram_record(h: &BenchHarness) {
    const RECORDS: u64 = 10_000;
    let metrics = MetricsRegistry::new();
    h.bench("histogram/record_10k", 30, || {
        for i in 0..RECORDS {
            metrics.record_wall("trial_wall", black_box(1e-4 * (1 + i % 977) as f64));
        }
    });
}

/// Replay + render of a real session trace (`jtune report`'s hot path).
fn report_render(h: &BenchHarness, base: &std::path::Path) {
    // Own subdirectory: `load` replays every *.jsonl in the directory,
    // and the sink bench's file is not a session trace.
    let dir = &base.join("report");
    std::fs::create_dir_all(dir).expect("temp dir");
    let workload = workload_by_name("compress").expect("built-in workload");
    let executor = SimExecutor::new(workload);
    let sink = JsonlSink::create(dir.join("compress.jsonl")).expect("temp trace file");
    let bus = TelemetryBus::new().with(Arc::new(sink));
    Tuner::new(bench_tuner_options()).run(&executor, "compress", &bus);
    drop(bus);
    let report = jtune_report::load(dir).expect("trace loads");
    h.bench("report/load", 30, || {
        black_box(jtune_report::load(dir).expect("trace loads").sessions.len())
    });
    h.bench("report/render_markdown", 30, || {
        black_box(jtune_report::to_markdown(&report).len())
    });
    h.bench("report/render_html", 30, || {
        black_box(jtune_report::to_html(&report).len())
    });
}

fn main() {
    let h = BenchHarness::from_args();
    let dir = std::env::temp_dir().join(format!("jtune-bench-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    trace_sink_overhead(&h, &dir);
    span_event_overhead(&h);
    histogram_record(&h);
    report_render(&h, &dir);
    h.finish("observability");
    let _ = std::fs::remove_dir_all(&dir);
}
