//! Micro-benchmarks of the hot paths (per the Rust Performance Book's
//! advice: measure the inner loops you believe are cheap).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use autotuner_core::manipulator::{ConfigManipulator, HierarchicalManipulator};
use jtune_flags::{hotspot_registry, FlagValue, JvmConfig};
use jtune_flagtree::hotspot_tree;
use jtune_harness::{evaluate_batch, Protocol, SimExecutor};
use jtune_jvmsim::{jit::JitModel, FlagView, JvmSim, Machine, Workload};
use jtune_util::Xoshiro256pp;

fn sim_run_per_collector(c: &mut Criterion) {
    let registry = hotspot_registry();
    let sim = JvmSim::new();
    let mut workload = Workload::baseline("micro");
    workload.total_work = 1e9;
    let mut g = c.benchmark_group("sim_run");
    for (label, sets) in [
        ("parallel", vec![]),
        ("serial", vec![("UseSerialGC", true), ("UseParallelGC", false), ("UseParallelOldGC", false)]),
        ("cms", vec![("UseConcMarkSweepGC", true), ("UseParallelGC", false), ("UseParallelOldGC", false)]),
        ("g1", vec![("UseG1GC", true), ("UseParallelGC", false), ("UseParallelOldGC", false)]),
    ] {
        let mut config = JvmConfig::default_for(registry);
        for (name, v) in &sets {
            config.set_by_name(registry, name, FlagValue::Bool(*v)).unwrap();
        }
        g.bench_function(label, |b| {
            b.iter(|| black_box(sim.run(registry, &config, &workload, 1).total));
        });
    }
    g.finish();
}

fn jit_model_step(c: &mut Criterion) {
    let registry = hotspot_registry();
    let config = JvmConfig::default_for(registry);
    let workload = Workload::baseline("micro");
    let (view, _) = FlagView::resolve(registry, &config, &Machine::default()).unwrap();
    c.bench_function("jit_advance_1k_epochs", |b| {
        b.iter(|| {
            let mut jit = JitModel::new(&view, &workload);
            let mut total_stall = 0.0;
            for _ in 0..1000 {
                total_stall += jit.advance(1e6, 0.005, workload.call_density);
            }
            black_box((jit.speed_factor(), total_stall))
        });
    });
}

fn config_operations(c: &mut Criterion) {
    let registry = hotspot_registry();
    let tree = hotspot_tree();
    let manipulator = HierarchicalManipulator::new();
    let config = JvmConfig::default_for(registry);
    c.bench_function("config_fingerprint", |b| {
        b.iter(|| black_box(config.fingerprint()));
    });
    c.bench_function("tree_active_flags", |b| {
        b.iter(|| black_box(tree.active_flags(&config).len()));
    });
    c.bench_function("tree_enforce", |b| {
        b.iter(|| {
            let mut candidate = config.clone();
            tree.enforce(registry, &mut candidate);
            black_box(candidate.fingerprint())
        });
    });
    c.bench_function("manipulator_mutate", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        b.iter(|| black_box(manipulator.mutate(&config, &mut rng, 0.3).fingerprint()));
    });
    c.bench_function("config_to_args", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let candidate = manipulator.random(&mut rng);
        b.iter(|| black_box(candidate.to_args(registry).len()));
    });
}

fn parallel_batch_scaling(c: &mut Criterion) {
    let mut workload = Workload::baseline("micro");
    workload.total_work = 2e8;
    let executor = SimExecutor::new(workload);
    let manipulator = HierarchicalManipulator::new();
    let mut rng = Xoshiro256pp::seed_from_u64(3);
    let candidates: Vec<JvmConfig> = (0..16).map(|_| manipulator.random(&mut rng)).collect();
    let mut g = c.benchmark_group("evaluate_batch_16");
    g.sample_size(10);
    for workers in [1usize, 4, 8] {
        g.bench_function(format!("workers_{workers}"), |b| {
            b.iter(|| {
                black_box(
                    evaluate_batch(&executor, Protocol::default(), &candidates, 1, workers).len(),
                )
            });
        });
    }
    g.finish();
}

criterion_group!(
    micro,
    sim_run_per_collector,
    jit_model_step,
    config_operations,
    parallel_batch_scaling
);
criterion_main!(micro);
