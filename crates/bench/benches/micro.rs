//! Micro-benchmarks of the hot paths (per the Rust Performance Book's
//! advice: measure the inner loops you believe are cheap).

use std::hint::black_box;

use autotuner_core::manipulator::{ConfigManipulator, HierarchicalManipulator};
use jtune_bench::BenchHarness;
use jtune_flags::{hotspot_registry, FlagValue, JvmConfig};
use jtune_flagtree::hotspot_tree;
use jtune_harness::{evaluate_batch, Protocol, SimExecutor};
use jtune_jvmsim::{jit::JitModel, FlagView, JvmSim, Machine, Workload};
use jtune_telemetry::TelemetryBus;
use jtune_util::Xoshiro256pp;

fn sim_run_per_collector(h: &BenchHarness) {
    let registry = hotspot_registry();
    let sim = JvmSim::new();
    let mut workload = Workload::baseline("micro");
    workload.total_work = 1e9;
    for (label, sets) in [
        ("parallel", vec![]),
        (
            "serial",
            vec![
                ("UseSerialGC", true),
                ("UseParallelGC", false),
                ("UseParallelOldGC", false),
            ],
        ),
        (
            "cms",
            vec![
                ("UseConcMarkSweepGC", true),
                ("UseParallelGC", false),
                ("UseParallelOldGC", false),
            ],
        ),
        (
            "g1",
            vec![
                ("UseG1GC", true),
                ("UseParallelGC", false),
                ("UseParallelOldGC", false),
            ],
        ),
    ] {
        let mut config = JvmConfig::default_for(registry);
        for (name, v) in &sets {
            config
                .set_by_name(registry, name, FlagValue::Bool(*v))
                .unwrap();
        }
        h.bench(&format!("sim_run/{label}"), 50, || {
            black_box(sim.run(registry, &config, &workload, 1).total)
        });
    }
}

fn jit_model_step(h: &BenchHarness) {
    let registry = hotspot_registry();
    let config = JvmConfig::default_for(registry);
    let workload = Workload::baseline("micro");
    let (view, _) = FlagView::resolve(registry, &config, &Machine::default()).unwrap();
    h.bench("jit_advance_1k_epochs", 50, || {
        let mut jit = JitModel::new(&view, &workload);
        let mut total_stall = 0.0;
        for _ in 0..1000 {
            total_stall += jit.advance(1e6, 0.005, workload.call_density);
        }
        black_box((jit.speed_factor(), total_stall))
    });
}

fn config_operations(h: &BenchHarness) {
    let registry = hotspot_registry();
    let tree = hotspot_tree();
    let manipulator = HierarchicalManipulator::new();
    let config = JvmConfig::default_for(registry);
    h.bench("config_fingerprint", 100, || {
        black_box(config.fingerprint())
    });
    h.bench("tree_active_flags", 100, || {
        black_box(tree.active_flags(&config).len())
    });
    h.bench("tree_enforce", 100, || {
        let mut candidate = config.clone();
        tree.enforce(registry, &mut candidate);
        black_box(candidate.fingerprint())
    });
    let mut rng = Xoshiro256pp::seed_from_u64(1);
    h.bench("manipulator_mutate", 100, || {
        black_box(manipulator.mutate(&config, &mut rng, 0.3).fingerprint())
    });
    let mut rng = Xoshiro256pp::seed_from_u64(2);
    let candidate = manipulator.random(&mut rng);
    h.bench("config_to_args", 100, || {
        black_box(candidate.to_args(registry).len())
    });
}

fn parallel_batch_scaling(h: &BenchHarness) {
    let mut workload = Workload::baseline("micro");
    workload.total_work = 2e8;
    let executor = SimExecutor::new(workload);
    let manipulator = HierarchicalManipulator::new();
    let mut rng = Xoshiro256pp::seed_from_u64(3);
    let candidates: Vec<JvmConfig> = (0..16).map(|_| manipulator.random(&mut rng)).collect();
    for workers in [1usize, 4, 8] {
        h.bench(&format!("evaluate_batch_16/workers_{workers}"), 10, || {
            black_box(
                evaluate_batch(
                    &executor,
                    Protocol::default(),
                    &candidates,
                    1,
                    workers,
                    &TelemetryBus::disabled(),
                )
                .len(),
            )
        });
    }
}

fn main() {
    let h = BenchHarness::from_args();
    sim_run_per_collector(&h);
    jit_model_step(&h);
    config_operations(&h);
    parallel_batch_scaling(&h);
    h.finish("micro");
}
