//! Frame-transport micro-benchmarks: the per-frame cost of the bounded
//! reader and the chaos-capable writer every daemon connection now pays.
//!
//! Three groups, matching the overload-hardening layers:
//!
//! - `read/*` — [`read_frame`]'s bounded line reads: canonical frames
//!   under the default 1 MiB cap, large-but-legal frames near a small
//!   cap, and the rejection cost of an oversized line (the slow path a
//!   hostile peer pays, which must not be quadratic).
//! - `write/*` — [`ChaosWriter`] with an inactive plan (the production
//!   configuration: the transparent wrapper must cost no more than a
//!   plain write) and with an active seeded plan.
//! - `plan/*` — [`NetFaultPlan::roll`], the pure per-frame fault
//!   decision on every chaotic read and write.
//!
//! `cargo bench -p jtune-bench --bench frames -- --json PATH` snapshots
//! the results (the committed `BENCH_8.json`).

use std::hint::black_box;
use std::io::BufReader;

use jtune_server::wire::{render_request, render_response};
use jtune_server::{read_frame, ChaosWriter, FrameReadError, NetFaultPlan, Request, Response};

/// 1 MiB — mirrors `jtune_server::net::DEFAULT_MAX_FRAME`.
const DEFAULT_CAP: usize = 1 << 20;

/// A buffer of `n` canonical frames: the request/response mix one
/// worker-plane exchange produces, repeated.
fn frame_buffer(n: usize) -> Vec<u8> {
    let lines = [
        render_request(&Request::Lease {
            wid: 7,
            wait_ms: 500,
        }),
        render_request(&Request::Status { sid: None }),
        render_response(&Response::LeaseAck { lease: 9 }),
        render_response(&Response::Idle { draining: false }),
    ];
    let mut out = Vec::new();
    for i in 0..n {
        out.extend_from_slice(lines[i % lines.len()].as_bytes());
        out.push(b'\n');
    }
    out
}

/// Bounded frame reads under the size cap.
fn read(h: &jtune_bench::BenchHarness) {
    const FRAMES: usize = 4_000;
    let canonical = frame_buffer(FRAMES);
    h.bench("read/canonical_4k_default_cap", 30, || {
        let mut reader = BufReader::new(canonical.as_slice());
        let mut frames = 0usize;
        while let Some(line) = read_frame(&mut reader, DEFAULT_CAP).expect("canonical frame reads")
        {
            frames += black_box(line).len().min(1);
        }
        assert_eq!(frames, FRAMES);
        frames
    });

    // Frames sized just under a tight cap: the reader must pay the cap
    // check without copying the line twice.
    let near_cap: Vec<u8> = {
        let line = format!("{{\"v\":1,\"op\":\"status\",\"pad\":\"{}\"}}\n", "x".repeat(900));
        line.into_bytes().repeat(1_000)
    };
    h.bench("read/near_cap_1k", 30, || {
        let mut reader = BufReader::new(near_cap.as_slice());
        let mut frames = 0usize;
        while let Some(line) = read_frame(&mut reader, 1_024).expect("near-cap frame reads") {
            frames += black_box(line).len().min(1);
        }
        assert_eq!(frames, 1_000);
        frames
    });

    // The hostile path: a 4 MiB line against the default cap. The read
    // must fail fast with `TooLarge` — cost bounded by the cap, not the
    // line — and repeating it 8 times keeps the pass measurable.
    let hostile: Vec<u8> = {
        let mut line = vec![b'x'; 4 << 20];
        line.push(b'\n');
        line
    };
    h.bench("read/oversized_4m_rejected_x8", 30, || {
        let mut rejections = 0usize;
        for _ in 0..8 {
            let mut reader = BufReader::new(hostile.as_slice());
            match read_frame(&mut reader, DEFAULT_CAP) {
                Err(FrameReadError::TooLarge { .. }) => rejections += 1,
                other => panic!("expected TooLarge, got {other:?}"),
            }
        }
        assert_eq!(rejections, 8);
        rejections
    });
}

/// Frame writes through the chaos-capable writer.
fn write(h: &jtune_bench::BenchHarness) {
    const FRAMES: u64 = 4_000;
    let line = render_request(&Request::Lease {
        wid: 7,
        wait_ms: 500,
    });

    // The production path: inactive plan, every frame byte-transparent.
    h.bench("write/inactive_plan_4k", 30, || {
        let mut sink = Vec::with_capacity((line.len() + 1) * FRAMES as usize);
        let mut writer = ChaosWriter::new(&mut sink, NetFaultPlan::inactive(), 1);
        for _ in 0..FRAMES {
            writer.write_frame(black_box(&line)).expect("clean write");
        }
        sink.len()
    });

    // An active garble-only plan: pure roll + corruption cost. Delays
    // would put wall-clock sleeps inside the timing loop, and drops or
    // disconnects would kill the writer mid-pass.
    let mut plan = NetFaultPlan::chaotic(0.2, 0xBE7C4);
    plan.delay_rate = 0.0;
    plan.drop_rate = 0.0;
    plan.disconnect_rate = 0.0;
    plan.garble_rate = 0.2;
    h.bench("write/chaotic_plan_4k", 30, || {
        let mut sink = Vec::with_capacity((line.len() + 1) * FRAMES as usize);
        let mut writer = ChaosWriter::new(&mut sink, plan, 1);
        for _ in 0..FRAMES {
            writer.write_frame(black_box(&line)).expect("no kills in plan");
        }
        sink.len()
    });
}

/// The pure per-frame fault decision.
fn plan(h: &jtune_bench::BenchHarness) {
    const ROLLS: u64 = 100_000;
    let chaotic = NetFaultPlan::chaotic(0.2, 0x5EED);
    h.bench("plan/roll_100k", 30, || {
        let mut faults = 0usize;
        for frame in 0..ROLLS {
            if !matches!(
                chaotic.roll(black_box(frame % 16), black_box(frame)),
                jtune_server::NetFault::None
            ) {
                faults += 1;
            }
        }
        faults
    });
}

fn main() {
    let h = jtune_bench::BenchHarness::from_args();
    read(&h);
    write(&h);
    plan(&h);
    h.finish("frames");
}
