//! Registry data-quality audit: structural invariants over all 750+
//! entries that per-module unit tests don't cover.

use jtune_flags::{hotspot_registry, Domain, FlagValue};

#[test]
fn flag_names_look_like_hotspot_flags() {
    for (_, spec) in hotspot_registry().iter() {
        assert!(
            spec.name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "{} has non-flag characters",
            spec.name
        );
        assert!(
            spec.name.chars().next().unwrap().is_ascii_alphabetic(),
            "{} starts oddly",
            spec.name
        );
        assert!(
            spec.name.len() >= 3 && spec.name.len() <= 60,
            "{}",
            spec.name
        );
    }
}

#[test]
fn size_flags_are_log_scaled_ints() {
    for (_, spec) in hotspot_registry().iter() {
        if spec.is_size {
            match &spec.domain {
                Domain::IntRange { log_scale, lo, .. } => {
                    assert!(log_scale, "{} is a size but linear", spec.name);
                    assert!(*lo >= 0, "{} negative size", spec.name);
                }
                other => panic!("{} is a size with domain {other:?}", spec.name),
            }
        }
    }
}

#[test]
fn int_domains_are_ordered_and_nonempty() {
    for (_, spec) in hotspot_registry().iter() {
        match &spec.domain {
            Domain::IntRange { lo, hi, .. } => {
                assert!(lo <= hi, "{}: lo {lo} > hi {hi}", spec.name)
            }
            Domain::DoubleRange { lo, hi } => {
                assert!(lo < hi, "{}: degenerate double range", spec.name)
            }
            Domain::Enum { variants } => {
                assert!(!variants.is_empty(), "{}: empty enum", spec.name)
            }
            Domain::Bool => {}
        }
    }
}

#[test]
fn collector_selection_flags_are_all_perf_relevant_bools() {
    let r = hotspot_registry();
    for name in [
        "UseSerialGC",
        "UseParallelGC",
        "UseParallelOldGC",
        "UseConcMarkSweepGC",
        "UseG1GC",
        "UseParNewGC",
    ] {
        let spec = r.spec(r.id(name).unwrap());
        assert!(matches!(spec.domain, Domain::Bool), "{name} not a bool");
        assert!(spec.perf, "{name} not perf-marked");
        assert!(spec.tunable(), "{name} not tunable");
    }
}

#[test]
fn exactly_one_collector_enabled_by_default() {
    let r = hotspot_registry();
    let on = [
        "UseSerialGC",
        "UseParallelGC",
        "UseConcMarkSweepGC",
        "UseG1GC",
    ]
    .iter()
    .filter(|n| r.spec(r.id(n).unwrap()).default == FlagValue::Bool(true))
    .count();
    assert_eq!(
        on, 1,
        "JDK-7 defaults must enable exactly the parallel collector"
    );
}

#[test]
fn percentage_flags_stay_within_percent_domains() {
    // Any flag whose name ends in Percent/Percentage/Fraction-as-percent
    // style must not allow values above 1000 (catches unit typos in the
    // data files).
    for (_, spec) in hotspot_registry().iter() {
        if spec.name.ends_with("Percent") || spec.name.ends_with("Percentage") {
            if let Domain::IntRange { hi, .. } = spec.domain {
                assert!(
                    hi <= 100_000,
                    "{}: suspicious percent bound {hi}",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn diagnostics_category_is_fully_inert() {
    for (_, spec) in hotspot_registry().iter() {
        if spec.category == jtune_flags::Category::Diagnostics {
            assert!(!spec.perf, "{} is diagnostics but perf-marked", spec.name);
        }
    }
}

#[test]
fn defaults_of_perf_flags_round_trip_the_command_line() {
    // Render every perf flag set AWAY from its default, then parse back.
    let r = hotspot_registry();
    let mut config = jtune_flags::JvmConfig::default_for(r);
    for (id, spec) in r.iter() {
        if !spec.perf || !spec.tunable() {
            continue;
        }
        let flipped = match (spec.default, &spec.domain) {
            (FlagValue::Bool(b), _) => FlagValue::Bool(!b),
            (FlagValue::Int(v), Domain::IntRange { lo, hi, .. }) => {
                FlagValue::Int(if v == *hi { *lo } else { *hi })
            }
            (FlagValue::Double(v), Domain::DoubleRange { lo, hi }) => {
                FlagValue::Double(if (v - *hi).abs() < 1e-12 { *lo } else { *hi })
            }
            (FlagValue::Enum(e), Domain::Enum { variants }) => {
                FlagValue::Enum(((e as usize + 1) % variants.len()) as u16)
            }
            _ => continue,
        };
        config.set(id, flipped);
    }
    let args = config.to_args(r);
    assert!(args.len() > 80, "only {} args", args.len());
    let back = jtune_flags::JvmConfig::parse_args(r, &args).expect("round trip");
    assert_eq!(back.fingerprint(), config.fingerprint());
}
