//! Complete JVM configurations.
//!
//! A [`JvmConfig`] assigns a value to *every* flag in a registry, stored as
//! a dense `Vec<FlagValue>` indexed by [`FlagId`]. This is the object the
//! tuner mutates, the hierarchy resolves, and the simulator (or a real
//! `java` process) consumes.

use crate::registry::{Registry, ValidationError};
use crate::spec::FlagId;
use crate::value::{parse_size, render_size, Domain, FlagValue};

/// A complete flag assignment.
#[derive(Clone, Debug, PartialEq)]
pub struct JvmConfig {
    values: Vec<FlagValue>,
}

impl JvmConfig {
    /// The registry's out-of-the-box configuration (every flag at its
    /// default).
    pub fn default_for(registry: &Registry) -> Self {
        Self {
            values: registry.default_values(),
        }
    }

    /// Construct from raw values.
    ///
    /// # Panics
    /// Panics if the value count does not match the registry.
    pub fn from_values(registry: &Registry, values: Vec<FlagValue>) -> Self {
        assert_eq!(
            values.len(),
            registry.len(),
            "config arity must match registry"
        );
        Self { values }
    }

    /// Number of flags.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the config covers zero flags (empty registry).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Read one flag.
    pub fn get(&self, id: FlagId) -> FlagValue {
        self.values[id.index()]
    }

    /// Write one flag without domain checking (used by the tuner after it
    /// has already clamped into the domain).
    pub fn set(&mut self, id: FlagId, value: FlagValue) {
        self.values[id.index()] = value;
    }

    /// Write one flag, validating against the registry.
    pub fn set_checked(
        &mut self,
        registry: &Registry,
        id: FlagId,
        value: FlagValue,
    ) -> Result<(), ValidationError> {
        registry.check(id, value)?;
        self.set(id, value);
        Ok(())
    }

    /// Convenience: set by name, validating.
    pub fn set_by_name(
        &mut self,
        registry: &Registry,
        name: &str,
        value: FlagValue,
    ) -> Result<(), ValidationError> {
        let id = registry.require(name)?;
        self.set_checked(registry, id, value)
    }

    /// Read by name.
    pub fn get_by_name(&self, registry: &Registry, name: &str) -> Option<FlagValue> {
        registry.id(name).map(|id| self.get(id))
    }

    /// Raw value slice (for the simulator's hot path).
    pub fn values(&self) -> &[FlagValue] {
        &self.values
    }

    /// Are all values inside their domains?
    pub fn validate(&self, registry: &Registry) -> Result<(), ValidationError> {
        for (id, _) in registry.iter() {
            registry.check(id, self.get(id))?;
        }
        Ok(())
    }

    /// Deterministic 64-bit fingerprint (FNV-1a over per-value hash keys).
    /// Used by the tuner to deduplicate already-evaluated configurations.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in &self.values {
            h ^= v.hash_key();
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Flags that differ from the registry defaults.
    pub fn delta(&self, registry: &Registry) -> Vec<ConfigDelta> {
        registry
            .iter()
            .filter_map(|(id, spec)| {
                let v = self.get(id);
                if values_equal(v, spec.default) {
                    None
                } else {
                    Some(ConfigDelta {
                        id,
                        name: spec.name,
                        default: spec.default,
                        value: v,
                    })
                }
            })
            .collect()
    }

    /// Render as HotSpot command-line arguments, emitting only the flags
    /// that differ from defaults (what the paper's tuner passes to `java`).
    pub fn to_args(&self, registry: &Registry) -> Vec<String> {
        self.delta(registry)
            .iter()
            .map(|d| {
                let spec = registry.spec(d.id);
                match d.value {
                    FlagValue::Bool(true) => format!("-XX:+{}", spec.name),
                    FlagValue::Bool(false) => format!("-XX:-{}", spec.name),
                    FlagValue::Int(i) if spec.is_size => {
                        format!("-XX:{}={}", spec.name, render_size(i))
                    }
                    FlagValue::Int(i) => format!("-XX:{}={i}", spec.name),
                    FlagValue::Double(x) => format!("-XX:{}={x}", spec.name),
                    FlagValue::Enum(e) => {
                        let label = match &spec.domain {
                            Domain::Enum { variants } => variants[e as usize],
                            _ => unreachable!("enum value on non-enum domain"),
                        };
                        format!("-XX:{}={label}", spec.name)
                    }
                }
            })
            .collect()
    }

    /// Parse HotSpot `-XX:` arguments on top of the default configuration.
    ///
    /// Accepts `-XX:+Name`, `-XX:-Name`, `-XX:Name=value` (integers, sizes
    /// with `k/m/g` suffixes, doubles, and enum labels). Unknown flags and
    /// malformed values are errors — the tuner never emits them, so seeing
    /// one means the caller's input is wrong.
    pub fn parse_args(registry: &Registry, args: &[String]) -> Result<Self, ParseError> {
        let mut config = Self::default_for(registry);
        for arg in args {
            let body = arg
                .strip_prefix("-XX:")
                .ok_or_else(|| ParseError::NotAnXXFlag(arg.clone()))?;
            if let Some(name) = body.strip_prefix('+') {
                let id = lookup(registry, name, arg)?;
                config
                    .set_checked(registry, id, FlagValue::Bool(true))
                    .map_err(|e| ParseError::Invalid(arg.clone(), e.to_string()))?;
            } else if let Some(name) = body.strip_prefix('-') {
                let id = lookup(registry, name, arg)?;
                config
                    .set_checked(registry, id, FlagValue::Bool(false))
                    .map_err(|e| ParseError::Invalid(arg.clone(), e.to_string()))?;
            } else if let Some((name, raw)) = body.split_once('=') {
                let id = lookup(registry, name, arg)?;
                let spec = registry.spec(id);
                let value = match &spec.domain {
                    Domain::Bool => {
                        return Err(ParseError::Invalid(
                            arg.clone(),
                            "boolean flags use -XX:+Name / -XX:-Name".into(),
                        ))
                    }
                    Domain::IntRange { .. } => FlagValue::Int(
                        parse_size(raw).ok_or_else(|| ParseError::BadValue(arg.clone()))?,
                    ),
                    Domain::DoubleRange { .. } => FlagValue::Double(
                        raw.parse::<f64>()
                            .map_err(|_| ParseError::BadValue(arg.clone()))?,
                    ),
                    Domain::Enum { variants } => {
                        let idx = variants
                            .iter()
                            .position(|v| *v == raw)
                            .ok_or_else(|| ParseError::BadValue(arg.clone()))?;
                        FlagValue::Enum(idx as u16)
                    }
                };
                config
                    .set_checked(registry, id, value)
                    .map_err(|e| ParseError::Invalid(arg.clone(), e.to_string()))?;
            } else {
                return Err(ParseError::BadValue(arg.clone()));
            }
        }
        Ok(config)
    }
}

fn lookup(registry: &Registry, name: &str, arg: &str) -> Result<FlagId, ParseError> {
    registry
        .id(name)
        .ok_or_else(|| ParseError::UnknownFlag(arg.to_string()))
}

fn values_equal(a: FlagValue, b: FlagValue) -> bool {
    match (a, b) {
        (FlagValue::Double(x), FlagValue::Double(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

/// One flag changed away from its default.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfigDelta {
    /// The flag.
    pub id: FlagId,
    /// Its name (borrowed from the spec).
    pub name: &'static str,
    /// The registry default.
    pub default: FlagValue,
    /// The configured value.
    pub value: FlagValue,
}

/// Errors from [`JvmConfig::parse_args`].
#[derive(Clone, Debug, PartialEq)]
pub enum ParseError {
    /// Argument does not start with `-XX:`.
    NotAnXXFlag(String),
    /// Flag name not present in the registry.
    UnknownFlag(String),
    /// Value failed to parse for the flag's type.
    BadValue(String),
    /// Value parsed but was rejected (out of domain / wrong form).
    Invalid(String, String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::NotAnXXFlag(a) => write!(f, "not a -XX: flag: {a}"),
            ParseError::UnknownFlag(a) => write!(f, "unknown flag: {a}"),
            ParseError::BadValue(a) => write!(f, "bad value: {a}"),
            ParseError::Invalid(a, why) => write!(f, "invalid {a}: {why}"),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::hotspot_registry;

    #[test]
    fn default_config_has_empty_delta_and_args() {
        let r = hotspot_registry();
        let c = JvmConfig::default_for(r);
        assert!(c.delta(r).is_empty());
        assert!(c.to_args(r).is_empty());
        assert!(c.validate(r).is_ok());
    }

    #[test]
    fn set_and_render_bool_int_size() {
        let r = hotspot_registry();
        let mut c = JvmConfig::default_for(r);
        c.set_by_name(r, "UseG1GC", FlagValue::Bool(true)).unwrap();
        c.set_by_name(r, "MaxHeapSize", FlagValue::Int(512 << 20))
            .unwrap();
        c.set_by_name(r, "CompileThreshold", FlagValue::Int(5000))
            .unwrap();
        let args = c.to_args(r);
        assert!(args.contains(&"-XX:+UseG1GC".to_string()));
        assert!(args.contains(&"-XX:MaxHeapSize=512m".to_string()));
        assert!(args.contains(&"-XX:CompileThreshold=5000".to_string()));
    }

    #[test]
    fn args_round_trip_through_parse() {
        let r = hotspot_registry();
        let mut c = JvmConfig::default_for(r);
        c.set_by_name(r, "UseConcMarkSweepGC", FlagValue::Bool(true))
            .unwrap();
        c.set_by_name(r, "CMSInitiatingOccupancyFraction", FlagValue::Int(55))
            .unwrap();
        c.set_by_name(r, "MaxHeapSize", FlagValue::Int(1 << 30))
            .unwrap();
        c.set_by_name(r, "UseBiasedLocking", FlagValue::Bool(false))
            .unwrap();
        let args = c.to_args(r);
        let parsed = JvmConfig::parse_args(r, &args).unwrap();
        assert_eq!(parsed, c);
        assert_eq!(parsed.fingerprint(), c.fingerprint());
    }

    #[test]
    fn parse_rejects_unknown_and_malformed() {
        let r = hotspot_registry();
        let bad = |s: &str| JvmConfig::parse_args(r, &[s.to_string()]);
        assert!(matches!(bad("-Xmx512m"), Err(ParseError::NotAnXXFlag(_))));
        assert!(matches!(
            bad("-XX:+NoSuchFlagEver"),
            Err(ParseError::UnknownFlag(_))
        ));
        assert!(matches!(
            bad("-XX:CompileThreshold=abc"),
            Err(ParseError::BadValue(_))
        ));
        assert!(matches!(
            bad("-XX:UseG1GC=true"),
            Err(ParseError::Invalid(_, _))
        ));
        assert!(matches!(bad("-XX:NakedName"), Err(ParseError::BadValue(_))));
    }

    #[test]
    fn parse_rejects_out_of_domain_value() {
        let r = hotspot_registry();
        // CMSInitiatingOccupancyFraction is a percentage.
        let err = JvmConfig::parse_args(r, &["-XX:CMSInitiatingOccupancyFraction=250".to_string()]);
        assert!(matches!(err, Err(ParseError::Invalid(_, _))));
    }

    #[test]
    fn set_checked_enforces_domain() {
        let r = hotspot_registry();
        let mut c = JvmConfig::default_for(r);
        let id = r.id("SurvivorRatio").unwrap();
        assert!(c.set_checked(r, id, FlagValue::Int(-5)).is_err());
        assert!(c.set_checked(r, id, FlagValue::Bool(true)).is_err());
    }

    #[test]
    fn fingerprint_changes_with_any_flag() {
        let r = hotspot_registry();
        let base = JvmConfig::default_for(r);
        let fp = base.fingerprint();
        let mut seen = std::collections::HashSet::new();
        seen.insert(fp);
        // Flipping each of a few flags must give unique fingerprints.
        for name in ["UseG1GC", "UseSerialGC", "TieredCompilation", "UseTLAB"] {
            let mut c = base.clone();
            let cur = c.get_by_name(r, name).unwrap().as_bool().unwrap();
            c.set_by_name(r, name, FlagValue::Bool(!cur)).unwrap();
            assert!(
                seen.insert(c.fingerprint()),
                "fingerprint collision on {name}"
            );
        }
    }

    #[test]
    fn delta_reports_changed_flags_only() {
        let r = hotspot_registry();
        let mut c = JvmConfig::default_for(r);
        c.set_by_name(r, "NewRatio", FlagValue::Int(4)).unwrap();
        let delta = c.delta(r);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].name, "NewRatio");
        assert_eq!(delta[0].value, FlagValue::Int(4));
    }

    #[test]
    fn enum_flags_render_labels() {
        let r = hotspot_registry();
        let mut c = JvmConfig::default_for(r);
        // AllocatePrefetchStyle is modelled as an int in HotSpot but we keep
        // a real enum flag in the registry for coverage: use it if present.
        let id = r.id("PrintAssemblyOptions");
        // The registry may model this as enum or not; this test simply
        // exercises the enum path when such a flag exists.
        if let Some(id) = id {
            if let Domain::Enum { variants } = &r.spec(id).domain {
                if variants.len() > 1 {
                    c.set(id, FlagValue::Enum(1));
                    let args = c.to_args(r);
                    assert!(args[0].contains(variants[1]));
                    let back = JvmConfig::parse_args(r, &args).unwrap();
                    assert_eq!(back.get(id), FlagValue::Enum(1));
                }
            }
        }
    }
}
