//! # jtune-flags
//!
//! The HotSpot JVM flag model: typed flag specifications, a registry of
//! **600+ JDK-7-era HotSpot flags** (the paper's "over 600 flags to choose
//! from"), configuration values, and `-XX:` command-line rendering/parsing.
//!
//! ## Structure
//!
//! - [`value`] — [`FlagValue`] (a runtime value) and [`Domain`] (the set of
//!   values a flag may take, including tuning ranges and log-scaling hints).
//! - [`spec`] — [`FlagSpec`] (one flag's static description), [`FlagId`]
//!   (dense index), [`Category`] and [`FlagKind`].
//! - [`registry`] — [`Registry`]: the full flag table with name lookup and
//!   validation, plus [`hotspot_registry`] returning the shared JDK-7 table.
//! - [`config`] — [`JvmConfig`]: a complete assignment of values to every
//!   flag, diffing against defaults, and command-line round-tripping.
//! - [`data`] — the registry entries themselves, organised by subsystem.
//!
//! ## Design notes
//!
//! Configurations are flat `Vec<FlagValue>` indexed by [`FlagId`] — never
//! string maps — so the tuner's hot paths (hashing, mutation, crossover)
//! are cache-friendly and allocation-free per flag. Roughly 60 flags are
//! *performance-relevant* (`perf = true`): the simulator reads them. The
//! rest parse, validate and render but do not move the needle for any
//! workload — mirroring the real JVM and making whole-space search
//! genuinely wasteful, which is the problem the paper's flag hierarchy
//! exists to solve.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod data;
pub mod registry;
pub mod spec;
pub mod value;

pub use config::{ConfigDelta, JvmConfig, ParseError};
pub use registry::{hotspot_registry, Registry, RegistryBuilder, ValidationError};
pub use spec::{Category, FlagId, FlagKind, FlagSpec};
pub use value::{Domain, FlagValue};
