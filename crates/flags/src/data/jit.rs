//! JIT-compilation flags: compilation policy, tiering, inlining, the code
//! cache, interpreter behaviour and compiler optimisations.
//!
//! `TieredCompilation` defaults to **off** in the JDK-7 server VM the paper
//! used; the tuner discovering that tiered compilation dramatically helps
//! *startup* workloads (SPECjvm2008's startup suite) is one of the
//! headline effects the reproduction models.

use super::*;
use crate::spec::Category::{CodeCache, Inlining, Interpreter, Jit};

/// JIT flags.
pub(crate) fn specs() -> Vec<FlagSpec> {
    let mut v = policy();
    v.extend(inlining());
    v.extend(codecache());
    v.extend(interpreter());
    v.extend(optimization());
    v
}

fn policy() -> Vec<FlagSpec> {
    vec![
        b("TieredCompilation", Jit, false, P, true, "Enable tiered compilation (C1 then C2)"),
        i("TieredStopAtLevel", Jit, 0, 4, 4, P, true, "Highest compilation level used by tiered policy"),
        il("CompileThreshold", Jit, 100, 1_000_000, 10_000, P, true, "Interpreted invocations before (re)compiling a method"),
        il("Tier2CompileThreshold", Jit, 100, 1_000_000, 1500, P, false, "Invocation threshold entering tier-2 compilation"),
        il("Tier3CompileThreshold", Jit, 100, 1_000_000, 2000, P, true, "Invocation threshold entering tier-3 (C1 full profile)"),
        il("Tier3InvocationThreshold", Jit, 10, 1_000_000, 200, P, false, "Tier-3 compile when invocations exceed this"),
        il("Tier3MinInvocationThreshold", Jit, 10, 1_000_000, 100, P, false, "Minimum invocations before tier-3 compilation"),
        il("Tier3BackEdgeThreshold", Jit, 100, 10_000_000, 60_000, P, false, "Back-edge count triggering tier-3 OSR compilation"),
        il("Tier4CompileThreshold", Jit, 1000, 10_000_000, 15_000, P, true, "Invocation threshold entering tier-4 (C2)"),
        il("Tier4InvocationThreshold", Jit, 100, 10_000_000, 5000, P, false, "Tier-4 compile when invocations exceed this"),
        il("Tier4MinInvocationThreshold", Jit, 100, 10_000_000, 600, P, false, "Minimum invocations before tier-4 compilation"),
        il("Tier4BackEdgeThreshold", Jit, 1000, 100_000_000, 40_000, P, false, "Back-edge count triggering tier-4 OSR compilation"),
        i("Tier3DelayOn", Jit, 0, 100, 5, P, false, "C2-queue length (per cpu) delaying tier-3 compiles"),
        i("Tier3DelayOff", Jit, 0, 100, 2, P, false, "C2-queue length re-enabling tier-3 compiles"),
        i("Tier3LoadFeedback", Jit, 0, 100, 5, P, false, "Queue-length feedback dampening tier-3 thresholds"),
        i("Tier4LoadFeedback", Jit, 0, 100, 3, P, false, "Queue-length feedback dampening tier-4 thresholds"),
        i("TieredRateUpdateMinTime", Jit, 0, 10_000, 1, P, false, "Minimum event-rate update period in milliseconds"),
        i("TieredRateUpdateMaxTime", Jit, 0, 10_000, 25, P, false, "Maximum event-rate update period in milliseconds"),
        i("CICompilerCount", Jit, 1, 32, 2, P, true, "Number of background compiler threads"),
        b("CICompilerCountPerCPU", Jit, false, P, false, "Scale compiler-thread count with available CPUs"),
        b("BackgroundCompilation", Jit, true, P, true, "Compile in background threads rather than blocking the mutator"),
        il("BackEdgeThreshold", Jit, 100, 10_000_000, 100_000, P, true, "Interpreted back-edges before OSR compilation"),
        il("OnStackReplacePercentage", Jit, 0, 100_000, 140, P, false, "NON_TIERED OSR trigger as a percentage of CompileThreshold"),
        il("InterpreterProfilePercentage", Jit, 0, 100, 33, P, false, "Profiling start as a percentage of CompileThreshold"),
        b("UseOnStackReplacement", Jit, true, P, true, "Compile loops mid-execution via on-stack replacement"),
        b("UseCompiler", Jit, true, P, true, "Enable the JIT compilers (off = pure interpreter, -Xint)"),
        b("UseLoopCounter", Jit, true, P, false, "Count loop iterations towards compilation decisions"),
        b("AlwaysCompileLoopMethods", Jit, false, P, false, "Eagerly compile methods containing loops"),
        b("DontCompileHugeMethods", Jit, true, P, true, "Skip compiling methods larger than HugeMethodLimit"),
        il("HugeMethodLimit", Jit, 1000, 64_000, 8000, DEV, false, "Bytecode size above which methods are never compiled"),
        b("CompileTheWorld", Jit, false, DEV, false, "Compile every method in the bootclasspath (testing)"),
        i("CompilationPolicyChoice", Jit, 0, 3, 0, P, false, "Which compilation policy to use (0 = counter-based)"),
        b("UseCounterDecay", Jit, true, P, false, "Decay invocation counters over time"),
        i("CounterHalfLifeTime", Jit, 1, 10_000, 30, P, false, "Seconds for an invocation counter to decay by half"),
        i("CounterDecayMinIntervalLength", Jit, 0, 10_000, 500, P, false, "Minimum milliseconds between counter decays"),
        b("PrintCompilation", Jit, false, P, false, "Print a line for each compiled method"),
        b("CITime", Jit, false, P, false, "Collect and report compiler time statistics"),
        b("CIPrintCompileQueue", Jit, false, DEV, false, "Print the compile queue contents"),
        i("CIMaxCompilerThreads", Jit, 1, 64, 16, DEV, false, "Upper bound on compiler threads (develop)"),
        b("StressTieredRuntime", Jit, false, DEV, false, "Alternate compilation levels randomly (stress)"),
        b("CompilationRepeat", Jit, false, DEV, false, "Recompile methods repeatedly (stress)"),
        i("MinCompileTime", Jit, 0, 10_000, 0, DEV, false, "Artificial minimum compile time (testing)"),
        b("LogCompilation", Jit, false, DIAG, false, "Write a structured compilation log"),
        b("CIObjectFactoryVerify", Jit, false, DEV, false, "Verify compiler-interface object factory"),
        i("TypeProfileWidth", Jit, 0, 8, 2, P, false, "Receiver types recorded per call site"),
        i("BciProfileWidth", Jit, 0, 8, 2, DEV, false, "Return bci's recorded per jsr site"),
        i("TypeProfileMajorReceiverPercent", Jit, 0, 100, 90, P, false, "Single-receiver percentage enabling monomorphic optimisation"),
        b("ProfileInterpreter", Jit, true, P, true, "Collect profiling data in the interpreter"),
        i("ProfileMaturityPercentage", Jit, 0, 100, 20, P, false, "Percentage of CompileThreshold at which profiles mature"),
        b("ProfileVirtualCalls", Jit, true, DEV, false, "Profile receiver types at virtual call sites"),
        b("PrintMethodData", Jit, false, DEV, false, "Print method profiling data at exit"),
        i("PerMethodRecompilationCutoff", Jit, -1, 100_000, 400, P, false, "Maximum recompiles per method; -1 = unbounded"),
        i("PerBytecodeRecompilationCutoff", Jit, -1, 100_000, 200, P, false, "Maximum recompiles per bytecode; -1 = unbounded"),
        i("PerMethodTrapLimit", Jit, 0, 10_000, 100, P, false, "Uncommon traps tolerated per method"),
        i("PerBytecodeTrapLimit", Jit, 0, 10_000, 4, P, false, "Uncommon traps tolerated per bytecode"),
    ]
}

fn inlining() -> Vec<FlagSpec> {
    vec![
        b("Inline", Inlining, true, P, true, "Enable method inlining"),
        b("ClipInlining", Inlining, true, P, true, "Clip inlining when the maximum desired size is reached"),
        il("MaxInlineSize", Inlining, 1, 1000, 35, P, true, "Maximum bytecode size of an inlinable method"),
        il("FreqInlineSize", Inlining, 1, 10_000, 325, P, true, "Maximum bytecode size of a frequently called inlinable method"),
        il("InlineSmallCode", Inlining, 100, 100_000, 1000, P, true, "Only inline compiled methods whose native code is smaller than this"),
        i("MaxInlineLevel", Inlining, 1, 32, 9, P, true, "Maximum depth of nested inlining"),
        i("MaxRecursiveInlineLevel", Inlining, 0, 8, 1, P, true, "Maximum depth of recursive inlining"),
        i("InlineFrequencyRatio", Inlining, 1, 100, 20, DEV, false, "Call-frequency ratio marking a site as frequent"),
        i("InlineFrequencyCount", Inlining, 1, 10_000, 100, P, false, "Invocation count marking a call site as frequent"),
        i("InlineThrowCount", Inlining, 0, 1000, 50, P, false, "Force inlining of throwing methods seen this often"),
        i("InlineThrowMaxSize", Inlining, 0, 1000, 200, P, false, "Maximum size of a force-inlined throwing method"),
        b("InlineAccessors", Inlining, true, P, true, "Always inline trivial getter/setter methods"),
        b("InlineReflectionGetCallerClass", Inlining, true, P, false, "Intrinsify Reflection.getCallerClass"),
        b("InlineObjectCopy", Inlining, true, P, false, "Intrinsify Object.clone and Arrays.copyOf"),
        b("InlineNatives", Inlining, true, P, false, "Intrinsify well-known native methods"),
        b("InlineMathNatives", Inlining, true, P, true, "Intrinsify java.lang.Math operations"),
        b("InlineClassNatives", Inlining, true, P, false, "Intrinsify java.lang.Class natives"),
        b("InlineThreadNatives", Inlining, true, P, false, "Intrinsify java.lang.Thread natives"),
        b("InlineUnsafeOps", Inlining, true, P, false, "Intrinsify sun.misc.Unsafe operations"),
        b("IncrementalInline", Inlining, false, EXP, false, "Do parse-time inlining incrementally"),
        i("LiveNodeCountInliningCutoff", Inlining, 1000, 100_000_000, 40_000, P, false, "IR node budget halting further inlining"),
        i("DesiredMethodLimit", Inlining, 100, 100_000, 8000, DEV, false, "Desired maximum method size after inlining"),
        b("InlineSynchronizedMethods", Inlining, true, P, false, "Inline synchronized methods"),
        b("UseInlineCaches", Inlining, true, P, true, "Use inline caches for virtual dispatch"),
        b("PrintInlining", Inlining, false, DIAG, false, "Print inlining decisions"),
    ]
}

fn codecache() -> Vec<FlagSpec> {
    vec![
        sz("ReservedCodeCacheSize", CodeCache, 2 * MB, 2 * GB, 48 * MB, P, true, "Reserved size of the compiled-code cache"),
        sz("InitialCodeCacheSize", CodeCache, 160 * KB, GB, 2496 * KB, P, false, "Initial committed size of the code cache"),
        sz("CodeCacheExpansionSize", CodeCache, 4 * KB, 16 * MB, 64 * KB, P, false, "Code-cache growth increment"),
        sz("CodeCacheMinimumFreeSpace", CodeCache, 100 * KB, 16 * MB, 500 * KB, P, false, "Free space reserved for non-method code"),
        b("UseCodeCacheFlushing", CodeCache, false, P, true, "Discard cold compiled code when the cache runs low"),
        i("MinCodeCacheFlushingInterval", CodeCache, 0, 3600, 30, P, false, "Minimum seconds between code-cache sweeps"),
        i("CodeCacheFlushingMinimumFreeSpace", CodeCache, 0, 16 << 20, 1500 * 1024, DEV, false, "Free-space watermark starting the sweeper"),
        i("NmethodSweepFraction", CodeCache, 1, 64, 16, P, false, "Fraction of the code cache swept per invocation"),
        i("NmethodSweepCheckInterval", CodeCache, 1, 3600, 5, P, false, "Seconds between sweeper liveness checks"),
        b("MethodFlushing", CodeCache, true, P, false, "Reclaim compiled code of obsolete methods"),
        b("UseCodeAging", CodeCache, true, P, false, "Insert counters to age unused compiled code"),
        b("SegmentedCodeCache", CodeCache, false, EXP, false, "Split the code cache into segments by code type"),
        b("PrintCodeCache", CodeCache, false, P, false, "Print code-cache layout and bounds at exit"),
        b("PrintCodeCacheOnCompilation", CodeCache, false, P, false, "Print code-cache state after each compilation"),
        i("CodeCacheSegmentSize", CodeCache, 1, 1024, 64, DEV, false, "Code-cache allocation granularity"),
        b("ExitOnFullCodeCache", CodeCache, false, DEV, false, "Exit the VM when the code cache fills (testing)"),
    ]
}

fn interpreter() -> Vec<FlagSpec> {
    vec![
        b("UseInterpreter", Interpreter, true, P, true, "Execute bytecode in the interpreter before compilation"),
        b("UseFastAccessorMethods", Interpreter, true, P, true, "Generate fast paths for trivial accessor methods"),
        b("UseFastEmptyMethods", Interpreter, true, P, true, "Generate fast paths for empty methods"),
        b("UseFastSignatureHandlers", Interpreter, true, P, false, "Generate fast JNI signature handlers"),
        b("RewriteBytecodes", Interpreter, true, P, false, "Rewrite bytecodes into faster internal forms"),
        b("RewriteFrequentPairs", Interpreter, true, P, false, "Fuse frequent bytecode pairs into super-bytecodes"),
        b("UseLoopSafepoints", Interpreter, true, DEV, false, "Poll for safepoints at loop back-edges"),
        b("UseInterpreterProfiling", Interpreter, true, DEV, false, "(develop twin of ProfileInterpreter)"),
        b("PrintBytecodeHistogram", Interpreter, false, DEV, false, "Print a histogram of executed bytecodes"),
        b("CountBytecodes", Interpreter, false, DEV, false, "Count the number of executed bytecodes"),
        b("TraceBytecodes", Interpreter, false, DEV, false, "Trace every executed bytecode"),
        i("BinarySwitchThreshold", Interpreter, 1, 100, 5, DEV, false, "Switch-case count switching to binary search dispatch"),
        b("UsePopCountInstruction", Interpreter, true, P, false, "Use hardware popcount where available"),
        b("Use486InstrsOnly", Interpreter, false, DEV, false, "Restrict code generation to i486 instructions"),
        i("InterpreterCodeSize", Interpreter, 100 * 1024, 16 << 20, 256 * 1024, DEV, false, "Size of the generated interpreter"),
        b("JvmtiExport", Interpreter, false, DEV, false, "Export JVMTI events from the interpreter"),
        b("UseCompressedInterpreterFrames", Interpreter, false, DEV, false, "Compress interpreter frame layout"),
        b("EnableInvokeDynamic", Interpreter, true, P, false, "Support the invokedynamic bytecode"),
        b("PatchALot", Interpreter, false, DEV, false, "Stress bytecode patching paths"),
        i("ClearInterpreterLocals", Interpreter, 0, 1, 0, DEV, false, "Zero interpreter locals on method entry"),
    ]
}

fn optimization() -> Vec<FlagSpec> {
    use crate::spec::Category::Optimization as Opt;
    vec![
        b("AggressiveOpts", Opt, false, P, true, "Enable point-release performance optimisations"),
        b("DoEscapeAnalysis", Opt, true, P, true, "Perform escape analysis in C2"),
        b("EliminateAllocations", Opt, true, P, true, "Scalar-replace non-escaping allocations"),
        b("EliminateLocks", Opt, true, P, true, "Elide locks on non-escaping objects"),
        b("EliminateNestedLocks", Opt, true, P, false, "Elide recursive locks on the same object"),
        b("UseLoopPredicate", Opt, true, P, false, "Hoist loop-invariant range checks via predication"),
        b("LoopUnswitching", Opt, true, P, false, "Clone loops to remove invariant conditions"),
        b("UseSuperWord", Opt, true, P, true, "Auto-vectorise loops (SLP)"),
        b("OptimizeFill", Opt, true, P, false, "Recognise and intrinsify array-fill loops"),
        i("LoopUnrollLimit", Opt, 0, 1000, 60, P, true, "Node budget for loop unrolling"),
        i("LoopOptsCount", Opt, 1, 100, 43, P, false, "Maximum loop-optimisation passes"),
        i("LoopUnrollMin", Opt, 0, 16, 4, P, false, "Minimum unroll factor attempted"),
        b("UseCountedLoopSafepoints", Opt, false, P, false, "Keep safepoints in counted loops"),
        b("PartialPeelLoop", Opt, true, P, false, "Partially peel (rotate) loops"),
        i("PartialPeelNewPhiDelta", Opt, 0, 100, 0, DEV, false, "Extra phis tolerated by partial peeling"),
        b("SplitIfBlocks", Opt, true, P, false, "Clone diamonds to eliminate control merges"),
        b("UseRDPCForConstantTableBase", Opt, false, EXP, false, "Address the constant table via RDPC"),
        b("OptoScheduling", Opt, false, P, false, "Instruction scheduling after register allocation"),
        b("OptoBundling", Opt, false, DEV, false, "Bundle instructions for VLIW-ish targets"),
        i("MaxNodeLimit", Opt, 20_000, 10_000_000, 80_000, P, false, "IR node budget per compilation"),
        i("NodeLimitFudgeFactor", Opt, 100, 100_000, 2000, DEV, false, "Node-budget slack for late passes"),
        b("UseOptoBiasInlining", Opt, true, P, false, "Generate biased-locking fast paths in C2"),
        b("OptimizePtrCompare", Opt, true, P, false, "Use escape analysis to optimise pointer comparisons"),
        b("UseJumpTables", Opt, true, P, false, "Emit jump tables for dense switches"),
        i("MinJumpTableSize", Opt, 2, 1000, 10, P, false, "Minimum cases for a jump table"),
        i("MaxJumpTableSize", Opt, 2, 1_000_000, 65_000, P, false, "Maximum cases for a jump table"),
        b("UseDivMod", Opt, true, P, false, "Strength-reduce combined division/modulus"),
        b("UseCondCardMark", Opt, false, P, false, "Test card state before dirtying it (reduces false sharing)"),
        b("BlockLayoutByFrequency", Opt, true, P, false, "Order basic blocks by edge frequency"),
        i("BlockLayoutMinDiamondPercentage", Opt, 0, 100, 20, P, false, "Frequency threshold for diamond layout"),
        b("BlockLayoutRotateLoops", Opt, true, P, false, "Rotate loops during block layout"),
        b("UseCMoveUnconditionally", Opt, false, EXP, false, "Prefer conditional moves over branches unconditionally"),
        i("ConditionalMoveLimit", Opt, 0, 100, 3, P, false, "Maximum cmoves considered profitable per branch"),
        b("UseVectoredExceptions", Opt, false, DEV, false, "Use vectored exception handling"),
        b("DeutschShiffmanExceptions", Opt, true, DEV, false, "Fast exception delivery for local handlers"),
        b("UseMathExactIntrinsics", Opt, false, EXP, false, "Intrinsify Math.*Exact operations"),
        b("UseFPUForSpilling", Opt, false, P, false, "Spill general registers through FPU registers"),
        i("AutoBoxCacheMax", Opt, 128, 1_000_000, 128, P, false, "Upper bound of the Integer autobox cache"),
        b("EliminateAutoBox", Opt, false, EXP, false, "Eliminate redundant autoboxing"),
        b("DoCEE", Opt, true, DEV, false, "Conditional-expression elimination in C1"),
        b("UseTableRanges", Opt, true, DEV, false, "Use table-based range checks in C1"),
        b("C1OptimizeVirtualCallProfiling", Opt, true, P, false, "Use receiver profiles for C1 virtual calls"),
        b("C1ProfileCalls", Opt, true, DEV, false, "Profile calls in C1-compiled code"),
        b("C1ProfileBranches", Opt, true, DEV, false, "Profile branches in C1-compiled code"),
        b("UseGlobalValueNumbering", Opt, true, DEV, false, "Global value numbering in C1"),
        b("UseLocalValueNumbering", Opt, true, DEV, false, "Local value numbering in C1"),
        b("RoundFPResults", Opt, false, P, false, "Round FP results for strictfp (x87 targets)"),
        b("OptoPeephole", Opt, true, DEV, false, "Peephole optimisation after code emission"),
    ]
}
