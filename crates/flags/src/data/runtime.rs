//! Runtime-system flags: locking, memory system (TLABs, compressed oops,
//! large pages, prefetch, NUMA), threading/safepoints, and class loading.

use super::*;
use crate::spec::Category::{ClassLoading, Locking, Memory, Threads};

/// Runtime flags.
pub(crate) fn specs() -> Vec<FlagSpec> {
    let mut v = locking();
    v.extend(memory());
    v.extend(threads());
    v.extend(classloading());
    v
}

fn locking() -> Vec<FlagSpec> {
    vec![
        b("UseBiasedLocking", Locking, true, P, true, "Bias monitors towards the first locking thread"),
        i("BiasedLockingStartupDelay", Locking, 0, 60_000, 4000, P, true, "Milliseconds after startup before biasing is enabled"),
        i("BiasedLockingBulkRebiasThreshold", Locking, 0, 1000, 20, P, true, "Revocations before bulk rebias of a data type"),
        i("BiasedLockingBulkRevokeThreshold", Locking, 0, 1000, 40, P, true, "Revocations before bulk revocation of a data type"),
        i("BiasedLockingDecayTime", Locking, 500, 600_000, 25_000, P, false, "Decay interval for the bulk-rebias threshold"),
        b("TraceBiasedLocking", Locking, false, P, false, "Trace biased-locking operations"),
        b("PrintBiasedLockingStatistics", Locking, false, P, false, "Print biased-locking statistics at exit"),
        b("UseSpinning", Locking, false, P, true, "Spin before inflating a contended monitor (pre-adaptive)"),
        i("PreBlockSpin", Locking, 1, 1_000_000, 10, P, true, "Spin iterations before blocking on a contended monitor"),
        i("SyncKnobs", Locking, 0, 1, 0, EXP, false, "(unsupported) synchronisation tunables switch"),
        b("UseHeavyMonitors", Locking, false, P, true, "Always use inflated monitors (no stack locking)"),
        i("MonitorBound", Locking, 0, 1_000_000, 0, EXP, false, "Bound on the monitor population; 0 = unbounded"),
        b("MonitorInUseLists", Locking, false, EXP, false, "Track in-use monitors on per-thread lists"),
        i("ObjectMonitorSpinLimit", Locking, 0, 100_000, 5000, DEV, false, "Adaptive-spin upper bound"),
        b("UseOSSpinWait", Locking, false, DEV, false, "Use OS pause hints while spinning"),
        i("NativeMonitorTimeout", Locking, -1, 600_000, -1, DEV, false, "Native monitor wait timeout"),
        i("NativeMonitorSpinLimit", Locking, 0, 100_000, 20, DEV, false, "Native monitor spin limit"),
        b("ReduceFieldZeroing", Locking, true, P, false, "Elide zeroing of fields immediately overwritten"),
        b("ReduceBulkZeroing", Locking, true, P, false, "Elide zeroing of freshly allocated arrays when provably dead"),
        b("FilterSpuriousWakeups", Locking, true, P, false, "Re-wait on spurious monitor wakeups"),
        i("hashCode", Locking, 0, 5, 0, P, false, "Identity hash-code generation algorithm"),
    ]
}

fn memory() -> Vec<FlagSpec> {
    vec![
        b("UseTLAB", Memory, true, P, true, "Allocate through thread-local allocation buffers"),
        b("ResizeTLAB", Memory, true, P, true, "Dynamically resize TLABs per thread"),
        sz("TLABSize", Memory, 0, 64 * MB, 0, P, true, "Fixed TLAB size; 0 = adaptive"),
        sz("MinTLABSize", Memory, 512, MB, 2 * KB, P, false, "Lower bound on TLAB size"),
        i("TLABAllocationWeight", Memory, 0, 100, 35, P, false, "Exponential-average weight for allocation-rate estimates"),
        i("TLABWasteTargetPercent", Memory, 1, 100, 1, P, true, "Eden percentage wasted as TLAB slack"),
        i("TLABRefillWasteFraction", Memory, 1, 100, 64, P, false, "TLAB fraction discardable at refill"),
        i("TLABWasteIncrement", Memory, 0, 100, 4, P, false, "Refill-waste increment on slow allocation"),
        b("ZeroTLAB", Memory, false, P, true, "Zero newly allocated TLABs eagerly"),
        b("TLABStats", Memory, true, P, false, "Collect TLAB statistics"),
        b("PrintTLAB", Memory, false, P, false, "Print per-thread TLAB statistics"),
        b("UseCompressedOops", Memory, true, P, true, "Compress 64-bit object references to 32 bits (heaps < 32 GB)"),
        b("UseCompressedClassPointers", Memory, false, EXP, false, "Compress class-metadata pointers"),
        i("ObjectAlignmentInBytes", Memory, 8, 256, 8, P, true, "Object alignment in bytes (power of two)"),
        b("UseLargePages", Memory, false, P, true, "Back the heap with large (huge) pages"),
        b("UseLargePagesIndividualAllocation", Memory, false, P, false, "Allocate large pages individually (Windows)"),
        b("UseHugeTLBFS", Memory, false, P, false, "Use Linux hugetlbfs for large pages"),
        b("UseTransparentHugePages", Memory, false, P, false, "Use Linux transparent huge pages (madvise)"),
        b("UseSHM", Memory, false, P, false, "Use SysV shared memory for large pages"),
        sz("LargePageSizeInBytes", Memory, 0, GB, 0, P, false, "Preferred large-page size; 0 = OS default"),
        i("LargePageHeapSizeThreshold", Memory, 0, 1 << 30, 128 * 1024 * 1024, P, false, "Minimum heap size before large pages are used"),
        b("UseNUMA", Memory, false, P, true, "NUMA-aware eden allocation"),
        b("UseNUMAInterleaving", Memory, false, P, false, "Interleave unstructured memory across NUMA nodes"),
        b("ForceNUMA", Memory, false, P, false, "Enable NUMA paths on single-node systems (testing)"),
        i("NUMAChunkResizeWeight", Memory, 0, 100, 20, P, false, "Smoothing weight for NUMA chunk resizing"),
        i("NUMAPageScanRate", Memory, 0, 100_000, 256, P, false, "Pages scanned per NUMA adaptation round"),
        b("NUMAStats", Memory, false, P, false, "Collect NUMA allocation statistics"),
        i("AllocatePrefetchStyle", Memory, 0, 3, 1, P, true, "Prefetch style after allocation: 0 = none, 1 = prefetchnta, 2 = test-and-prefetch, 3 = cache-line stride"),
        i("AllocatePrefetchDistance", Memory, -1, 512, -1, P, true, "Bytes ahead of the allocation pointer to prefetch; -1 = per-CPU default"),
        i("AllocatePrefetchLines", Memory, 1, 64, 3, P, true, "Cache lines prefetched per allocation"),
        i("AllocateInstancePrefetchLines", Memory, 1, 64, 1, P, false, "Cache lines prefetched per instance allocation"),
        i("AllocatePrefetchStepSize", Memory, 16, 512, 64, P, false, "Stride between sequential prefetch instructions"),
        i("AllocatePrefetchInstr", Memory, 0, 3, 0, P, false, "Which prefetch instruction variant to emit"),
        i("ReadPrefetchInstr", Memory, 0, 3, 0, P, false, "Prefetch instruction for read-ahead"),
        b("UseSSE42Intrinsics", Memory, false, P, false, "Use SSE4.2 string intrinsics"),
        i("UseSSE", Memory, 0, 4, 4, P, false, "Highest SSE instruction set level used"),
        i("UseAVX", Memory, 0, 2, 0, P, false, "Highest AVX instruction set level used"),
        b("UseXMMForArrayCopy", Memory, false, P, false, "Copy arrays through XMM registers"),
        b("UseUnalignedLoadStores", Memory, false, P, false, "Use unaligned SSE moves in copy stubs"),
        b("UseFastStosb", Memory, false, P, false, "Use enhanced rep-stosb for block fills"),
        b("UseStoreImmI16", Memory, true, P, false, "Emit 16-bit immediate stores"),
        b("UseAddressNop", Memory, false, P, false, "Use multi-byte address NOPs for padding"),
        b("UseNewLongLShift", Memory, false, P, false, "Use optimised 64-bit left-shift sequence"),
        b("UseBimorphicInlining", Memory, true, P, false, "Inline both receivers of bimorphic call sites"),
        b("StackTraceInThrowable", Memory, true, P, true, "Record stack traces when Throwables are constructed"),
        b("OmitStackTraceInFastThrow", Memory, true, P, false, "Reuse preallocated exceptions for hot implicit throws"),
        b("RestrictContended", Memory, true, P, false, "Honour @Contended only in trusted code"),
        i("ContendedPaddingWidth", Memory, 0, 8192, 128, P, false, "Padding bytes around @Contended fields"),
        b("UsePerfData", Memory, true, P, false, "Maintain the jvmstat performance-data file"),
        b("PerfDisableSharedMem", Memory, false, P, false, "Keep jvmstat data out of shared memory"),
        i("PerfDataMemorySize", Memory, 4 * 1024, MB, 32 * 1024, P, false, "Size of the jvmstat memory region"),
    ]
}

fn threads() -> Vec<FlagSpec> {
    vec![
        sz("ThreadStackSize", Threads, 0, 32 * MB, 1024 * KB, P, true, "Java thread stack size (-Xss); 0 = platform default"),
        sz("VMThreadStackSize", Threads, 0, 32 * MB, 1024 * KB, P, false, "Native VM thread stack size"),
        sz("CompilerThreadStackSize", Threads, 0, 32 * MB, 4096 * KB, P, false, "Compiler thread stack size"),
        i("ThreadPriorityPolicy", Threads, 0, 1, 0, P, false, "0 = normal, 1 = aggressive thread-priority mapping"),
        b("ThreadPriorityVerbose", Threads, false, P, false, "Trace thread-priority changes"),
        i("JavaPriority1_To_OSPriority", Threads, -1, 127, -1, P, false, "OS priority for Java priority 1"),
        i("JavaPriority10_To_OSPriority", Threads, -1, 127, -1, P, false, "OS priority for Java priority 10"),
        b("UseThreadPriorities", Threads, true, P, false, "Use native thread priorities"),
        i("DeferThrSuspendLoopCount", Threads, 0, 100_000, 4000, P, false, "Iterations awaiting threads during safepoint synchronisation"),
        i("DeferPollingPageLoopCount", Threads, -1, 100_000, -1, P, false, "Iterations before arming the polling page"),
        i("SafepointTimeoutDelay", Threads, 0, 600_000, 10_000, P, false, "Milliseconds before a safepoint timeout is reported"),
        b("SafepointTimeout", Threads, false, P, false, "Report threads failing to reach safepoints"),
        i("GuaranteedSafepointInterval", Threads, 0, 600_000, 1000, DIAG, true, "Guaranteed milliseconds between safepoints"),
        b("UseMembar", Threads, false, P, true, "Issue memory barriers in thread-state transitions (vs pseudo-membar)"),
        b("UseCompilerSafepoints", Threads, true, DEV, false, "Poll for safepoints in compiled code"),
        b("EnableThreadSMRStatistics", Threads, false, DIAG, false, "Collect thread safe-memory-reclamation statistics"),
        b("ReduceSignalUsage", Threads, false, P, false, "Do not install optional signal handlers"),
        b("AllowUserSignalHandlers", Threads, false, P, false, "Tolerate pre-installed user signal handlers"),
        b("UseAltSigs", Threads, false, P, false, "Use alternate signals for VM-internal signalling"),
        b("MaxFDLimit", Threads, true, P, false, "Raise the file-descriptor soft limit to the hard limit"),
        i("StarvationMonitorInterval", Threads, 0, 60_000, 200, DEV, false, "Sleep between thread-starvation checks"),
        b("UseVMInterruptibleIO", Threads, false, P, false, "VM-interruptible IO on Solaris"),
        i("ThreadSafetyMargin", Threads, 0, 1 << 30, 50 * 1024 * 1024, P, false, "Address-space margin reserved per thread (32-bit)"),
        b("UseBoundThreads", Threads, true, P, false, "Bind user threads to kernel threads (Solaris)"),
        b("UseLWPSynchronization", Threads, true, P, false, "LWP-based rather than thread-based synchronisation (Solaris)"),
        b("StressLdcRewrite", Threads, false, DEV, false, "Stress constant-pool rewriting paths"),
        i("StressNonEntrant", Threads, 0, 1, 0, DEV, false, "Stress making nmethods non-entrant"),
        b("DieOnSafepointTimeout", Threads, false, DEV, false, "Abort the VM on safepoint timeout (testing)"),
        i("SuspendRetryCount", Threads, 0, 1000, 50, P, false, "Thread-suspend retries before giving up"),
        i("SuspendRetryDelay", Threads, 0, 1000, 5, P, false, "Milliseconds between suspend retries"),
    ]
}

fn classloading() -> Vec<FlagSpec> {
    vec![
        b("UseSharedSpaces", ClassLoading, true, P, true, "Map the class-data-sharing archive read-only (faster startup)"),
        b("RequireSharedSpaces", ClassLoading, false, P, false, "Fail to start if the CDS archive is unusable"),
        b("DumpSharedSpaces", ClassLoading, false, P, false, "Dump the loaded classes into a CDS archive and exit"),
        sz("SharedReadOnlySize", ClassLoading, MB, GB, 10 * MB, P, false, "Read-only space size in the CDS archive"),
        sz("SharedReadWriteSize", ClassLoading, MB, GB, 10 * MB, P, false, "Read-write space size in the CDS archive"),
        sz("SharedMiscDataSize", ClassLoading, KB, GB, 4 * MB, P, false, "Miscellaneous-data space size in the CDS archive"),
        sz("SharedMiscCodeSize", ClassLoading, KB, GB, 120 * KB, P, false, "Code space size in the CDS archive"),
        b("BytecodeVerificationRemote", ClassLoading, true, P, true, "Verify bytecodes of remotely loaded classes"),
        b("BytecodeVerificationLocal", ClassLoading, false, P, true, "Verify bytecodes of locally loaded classes"),
        b("UseSplitVerifier", ClassLoading, true, P, false, "Use the split (type-checking) bytecode verifier"),
        b("FailOverToOldVerifier", ClassLoading, true, P, false, "Retry with the old verifier when the split verifier fails"),
        b("RelaxAccessControlCheck", ClassLoading, false, P, false, "Relax access control for older class files"),
        b("ClassLoadingStats", ClassLoading, false, DEV, false, "Collect class-loading statistics"),
        b("TraceClassLoading", ClassLoading, false, P, false, "Trace each loaded class"),
        b("TraceClassLoadingPreorder", ClassLoading, false, P, false, "Trace classes in referencing order"),
        b("TraceClassUnloading", ClassLoading, false, P, false, "Trace each unloaded class"),
        b("TraceClassResolution", ClassLoading, false, P, false, "Trace constant-pool resolutions"),
        b("TraceLoaderConstraints", ClassLoading, false, P, false, "Trace loader-constraint recording"),
        b("AllowParallelDefineClass", ClassLoading, false, P, false, "Allow parallel defineClass for parallel-capable loaders"),
        b("MustCallLoadClassInternal", ClassLoading, false, P, false, "Route loading through loadClassInternal"),
        b("UnsyncloadClass", ClassLoading, false, DIAG, false, "Unsynchronised class loading for custom loaders"),
        i("PredictedLoadedClassCount", ClassLoading, 0, 10_000_000, 0, EXP, false, "Expected loaded-class count sizing internal tables"),
        b("LazyBootClassLoader", ClassLoading, true, P, false, "Open boot classpath jars lazily"),
        b("EagerInitialization", ClassLoading, false, DEV, false, "Initialise classes eagerly at load time"),
        b("UsePrivilegedStack", ClassLoading, true, P, false, "Use the privileged stack for access control"),
        i("ClassMetaspaceSize", ClassLoading, MB, 10 * GB, 2 * MB, DEV, false, "Metaspace devoted to class metadata (develop twin)"),
        b("VerifyObjectStartArrayAtGC", ClassLoading, false, DEV, false, "(develop) verify class-space start array at GC"),
        b("CompactFields", ClassLoading, true, P, false, "Pack fields into the gaps left by alignment"),
        i("FieldsAllocationStyle", ClassLoading, 0, 2, 1, P, false, "Field layout policy: 0 = oops first, 1 = primitives first, 2 = packed"),
        b("PrintClassHistogram", ClassLoading, false, MAN, false, "Print a class-instance histogram on SIGQUIT"),
        b("PreloadClasses", ClassLoading, false, DEV, false, "(develop) preload application classes at startup"),
    ]
}
