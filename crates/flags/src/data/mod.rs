//! The JDK-7 HotSpot flag table.
//!
//! One function per subsystem file, each returning a `Vec<FlagSpec>`;
//! [`populate`] concatenates them into a [`RegistryBuilder`]. Names,
//! defaults and descriptions follow HotSpot's `globals.hpp` (and the GC/
//! compiler-specific `*_globals.hpp` files) of the JDK-7u era the paper
//! used; sizes are the 64-bit server-VM defaults on a multi-core Linux
//! machine, which is the paper's experimental platform class.
//!
//! Flags with `perf = true` are read by the `jtune-jvmsim` performance
//! model. Everything else is performance-inert — exactly like the real
//! JVM, where the majority of the 600+ flags do not affect any given
//! workload's run time. The inert majority is not dead code: it is the
//! *reason* the paper's flag hierarchy matters, and experiments E3/E5
//! measure it.

// The spec-constructor helpers mirror a FlagSpec field-for-field; a
// parameter per field is the point.
#![allow(clippy::too_many_arguments)]

use crate::registry::RegistryBuilder;
use crate::spec::{Category, FlagKind, FlagSpec};
use crate::value::{Domain, FlagValue};

mod diagnostics;
mod gc;
mod heap;
mod jit;
mod misc;
mod runtime;

/// Fill `builder` with the complete flag table.
pub fn populate(builder: &mut RegistryBuilder) {
    builder.extend(heap::specs());
    builder.extend(gc::specs());
    builder.extend(jit::specs());
    builder.extend(runtime::specs());
    builder.extend(diagnostics::specs());
    builder.extend(misc::specs());
}

// ---- compact constructors used by the data files ----

pub(crate) const P: FlagKind = FlagKind::Product;
pub(crate) const DIAG: FlagKind = FlagKind::Diagnostic;
pub(crate) const EXP: FlagKind = FlagKind::Experimental;
pub(crate) const MAN: FlagKind = FlagKind::Manageable;
pub(crate) const DEV: FlagKind = FlagKind::Develop;

/// Boolean flag.
pub(crate) fn b(
    name: &'static str,
    category: Category,
    default: bool,
    kind: FlagKind,
    perf: bool,
    desc: &'static str,
) -> FlagSpec {
    FlagSpec {
        name,
        category,
        domain: Domain::Bool,
        default: FlagValue::Bool(default),
        kind,
        is_size: false,
        perf,
        desc,
    }
}

/// Integer flag on a linear scale.
pub(crate) fn i(
    name: &'static str,
    category: Category,
    lo: i64,
    hi: i64,
    default: i64,
    kind: FlagKind,
    perf: bool,
    desc: &'static str,
) -> FlagSpec {
    FlagSpec {
        name,
        category,
        domain: Domain::IntRange {
            lo,
            hi,
            log_scale: false,
        },
        default: FlagValue::Int(default),
        kind,
        is_size: false,
        perf,
        desc,
    }
}

/// Integer flag on a logarithmic scale (thresholds, counts spanning
/// orders of magnitude).
pub(crate) fn il(
    name: &'static str,
    category: Category,
    lo: i64,
    hi: i64,
    default: i64,
    kind: FlagKind,
    perf: bool,
    desc: &'static str,
) -> FlagSpec {
    FlagSpec {
        name,
        category,
        domain: Domain::IntRange {
            lo,
            hi,
            log_scale: true,
        },
        default: FlagValue::Int(default),
        kind,
        is_size: false,
        perf,
        desc,
    }
}

/// Byte-size flag (log-scaled, rendered with k/m/g suffixes).
pub(crate) fn sz(
    name: &'static str,
    category: Category,
    lo: i64,
    hi: i64,
    default: i64,
    kind: FlagKind,
    perf: bool,
    desc: &'static str,
) -> FlagSpec {
    FlagSpec {
        name,
        category,
        domain: Domain::IntRange {
            lo,
            hi,
            log_scale: true,
        },
        default: FlagValue::Int(default),
        kind,
        is_size: true,
        perf,
        desc,
    }
}

/// Double flag.
pub(crate) fn d(
    name: &'static str,
    category: Category,
    lo: f64,
    hi: f64,
    default: f64,
    kind: FlagKind,
    perf: bool,
    desc: &'static str,
) -> FlagSpec {
    FlagSpec {
        name,
        category,
        domain: Domain::DoubleRange { lo, hi },
        default: FlagValue::Double(default),
        kind,
        is_size: false,
        perf,
        desc,
    }
}

pub(crate) const KB: i64 = 1024;
pub(crate) const MB: i64 = 1024 * 1024;
pub(crate) const GB: i64 = 1024 * 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn all() -> Vec<FlagSpec> {
        let mut v = Vec::new();
        v.extend(heap::specs());
        v.extend(gc::specs());
        v.extend(jit::specs());
        v.extend(runtime::specs());
        v.extend(diagnostics::specs());
        v.extend(misc::specs());
        v
    }

    #[test]
    fn over_600_flags_total() {
        assert!(all().len() > 600, "only {}", all().len());
    }

    #[test]
    fn names_are_unique_across_files() {
        let mut seen: HashMap<&str, usize> = HashMap::new();
        for (i, s) in all().iter().enumerate() {
            if let Some(prev) = seen.insert(s.name, i) {
                panic!("flag {} defined at both {} and {}", s.name, prev, i);
            }
        }
    }

    #[test]
    fn a_healthy_minority_is_performance_relevant() {
        let specs = all();
        let perf = specs.iter().filter(|s| s.perf).count();
        // The simulator reads 40–110 flags; the rest are inert on purpose.
        assert!((40..=110).contains(&perf), "perf flag count {perf}");
        let frac = perf as f64 / specs.len() as f64;
        assert!(frac < 0.2, "too many perf flags: {frac}");
    }

    #[test]
    fn every_category_is_populated() {
        let specs = all();
        for cat in Category::ALL {
            assert!(
                specs.iter().any(|s| s.category == cat),
                "category {} has no flags",
                cat.name()
            );
        }
    }

    #[test]
    fn descriptions_are_nonempty() {
        for s in all() {
            assert!(!s.desc.is_empty(), "{} has no description", s.name);
        }
    }
}
