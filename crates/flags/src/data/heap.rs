//! Heap-geometry flags.
//!
//! Defaults reflect a JDK-7 64-bit server VM with ergonomics resolved for a
//! mid-range multi-core machine: 64 MB initial / 1 GB max heap (¼ of 4 GB
//! physical), `NewRatio=2`, `SurvivorRatio=8`. These matter: the paper's
//! gains come substantially from the tuner discovering that the ergonomic
//! defaults underprovision the young generation for allocation-heavy
//! programs.

use super::*;
use crate::spec::Category::Heap;

/// Heap flags.
pub(crate) fn specs() -> Vec<FlagSpec> {
    vec![
        sz("InitialHeapSize", Heap, 2 * MB, 32 * GB, 64 * MB, P, true, "Initial heap size (-Xms); 0 means ergonomically chosen"),
        sz("MaxHeapSize", Heap, 4 * MB, 32 * GB, GB, P, true, "Maximum heap size (-Xmx)"),
        sz("NewSize", Heap, MB, 16 * GB, 21 * MB, P, true, "Initial new (young) generation size"),
        sz("MaxNewSize", Heap, MB, 16 * GB, 16 * GB, P, true, "Maximum new generation size; bounded by MaxHeapSize"),
        sz("OldSize", Heap, 4 * MB, 32 * GB, 43 * MB, P, false, "Initial tenured generation size"),
        il("NewRatio", Heap, 1, 16, 2, P, true, "Ratio of old/new generation sizes"),
        il("SurvivorRatio", Heap, 1, 64, 8, P, true, "Ratio of eden/survivor space size"),
        i("TargetSurvivorRatio", Heap, 1, 100, 50, P, true, "Desired percentage of survivor space used after scavenge"),
        i("MaxTenuringThreshold", Heap, 0, 15, 15, P, true, "Maximum value for tenuring threshold"),
        i("InitialTenuringThreshold", Heap, 0, 15, 7, P, false, "Initial value for tenuring threshold"),
        i("MinHeapFreeRatio", Heap, 0, 100, 40, MAN, true, "Min percentage of heap free after GC to avoid expansion"),
        i("MaxHeapFreeRatio", Heap, 0, 100, 70, MAN, true, "Max percentage of heap free after GC to avoid shrinking"),
        sz("MinHeapDeltaBytes", Heap, 4 * KB, 128 * MB, 168 * KB, P, false, "Minimum change in heap space due to GC"),
        sz("PermSize", Heap, 4 * MB, 2 * GB, 21 * MB, P, false, "Initial size of permanent generation"),
        sz("MaxPermSize", Heap, 16 * MB, 4 * GB, 85 * MB, P, true, "Maximum size of permanent generation"),
        sz("PermGenPadding", Heap, 0, 64 * MB, 0, DEV, false, "Additional padding for perm gen sizing"),
        i("PermMarkSweepDeadRatio", Heap, 0, 100, 20, P, false, "Percentage of perm gen dead wood allowed before compaction"),
        sz("MetaspaceSize", Heap, 4 * MB, 2 * GB, 21 * MB, P, false, "Initial metaspace threshold triggering class-metadata GC"),
        sz("ErgoHeapSizeLimit", Heap, 0, 32 * GB, 0, P, false, "Maximum ergonomically set heap size; 0 = no limit"),
        i("InitialRAMFraction", Heap, 1, 512, 64, P, false, "Fraction of physical memory for initial heap size"),
        i("MaxRAMFraction", Heap, 1, 64, 4, P, false, "Fraction of physical memory for maximum heap size"),
        i("MinRAMFraction", Heap, 1, 64, 2, P, false, "Fraction of small physical memory for maximum heap size"),
        sz("MaxRAM", Heap, GB, 128 * GB, 4 * GB, P, false, "Real memory size used to set maximum heap size"),
        b("UseAdaptiveGenerationSizePolicyAtMinorCollection", Heap, true, P, false, "Adapt generation sizes at minor collections"),
        b("UseAdaptiveGenerationSizePolicyAtMajorCollection", Heap, true, P, false, "Adapt generation sizes at major collections"),
        b("UseAdaptiveSizePolicyWithSystemGC", Heap, false, P, false, "Include System.gc() in adaptive size policy decisions"),
        b("UseAdaptiveSizeDecayMajorGCCost", Heap, true, P, false, "Decay the supplemental growth rate on major collections"),
        i("AdaptiveSizeDecrementScaleFactor", Heap, 1, 16, 4, P, false, "Scale factor shrinking generation size decrements"),
        i("AdaptiveSizeMajorGCDecayTimeScale", Heap, 0, 64, 10, P, false, "Time scale over which major GC cost decays"),
        i("AdaptiveSizePolicyInitializingSteps", Heap, 1, 100, 20, P, false, "Number of steps where heuristics are used before data"),
        i("AdaptiveSizePolicyWeight", Heap, 0, 100, 10, P, false, "Weighting given to current GC times vs historical"),
        i("AdaptiveTimeWeight", Heap, 0, 100, 25, P, false, "Weighting given to time in adaptive policy"),
        i("ThresholdTolerance", Heap, 0, 100, 10, P, false, "Allowed collection cost difference between generations"),
        b("ShrinkHeapInSteps", Heap, true, P, false, "Gradually shrink the heap towards the target size"),
        sz("YoungPLABSize", Heap, KB, 16 * MB, 32 * KB, P, false, "Size of young-gen promotion LAB in words"),
        sz("OldPLABSize", Heap, KB, 16 * MB, 8 * KB, P, false, "Size of old-gen promotion LAB in words"),
        b("ResizePLAB", Heap, true, P, false, "Dynamically resize promotion LABs"),
        i("PLABWeight", Heap, 0, 100, 75, P, false, "Exponential smoothing weight for PLAB resizing"),
        b("AlwaysPreTouch", Heap, false, P, true, "Touch every heap page during JVM initialisation"),
        sz("HeapBaseMinAddress", Heap, GB, 32 * GB, 2 * GB, P, false, "Minimum address for the heap base when compressing oops"),
        i("HeapSizePerGCThread", Heap, 16, 512, 87, P, false, "Heap MB per GC thread used in ergonomics"),
        i("GCHeapFreeLimit", Heap, 0, 100, 2, P, false, "Minimum percentage of free space after full GC before OOM"),
        i("GCTimeLimit", Heap, 0, 100, 98, P, false, "GC time percentage limit before OutOfMemoryError"),
        b("CollectGen0First", Heap, false, DEV, false, "Collect the young generation before each full GC"),
        b("ScavengeBeforeFullGC", Heap, true, P, false, "Scavenge the young generation before each full GC"),
    ]
}
