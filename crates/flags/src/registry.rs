//! The flag registry: the full table of flags a JVM build exposes.

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::spec::{Category, FlagId, FlagSpec};
use crate::value::FlagValue;

/// Error raised while building or validating against a registry.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidationError {
    /// Two specs share a name.
    DuplicateName(&'static str),
    /// A spec's default value is outside its own domain.
    DefaultOutOfDomain(&'static str),
    /// More flags than `FlagId` (u16) can index.
    TooManyFlags(usize),
    /// A value was rejected for a flag (wrong type or out of range).
    ValueOutOfDomain {
        /// The offending flag's name.
        flag: String,
        /// Rendered offending value.
        value: String,
    },
    /// Lookup of an unknown flag name.
    UnknownFlag(String),
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::DuplicateName(n) => write!(f, "duplicate flag name {n}"),
            ValidationError::DefaultOutOfDomain(n) => {
                write!(f, "default value of {n} is outside its domain")
            }
            ValidationError::TooManyFlags(n) => write!(f, "{n} flags exceed FlagId capacity"),
            ValidationError::ValueOutOfDomain { flag, value } => {
                write!(f, "value {value} is outside the domain of {flag}")
            }
            ValidationError::UnknownFlag(n) => write!(f, "unknown flag {n}"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Incremental [`Registry`] construction with validation.
#[derive(Default)]
pub struct RegistryBuilder {
    specs: Vec<FlagSpec>,
}

impl RegistryBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one spec.
    pub fn push(&mut self, spec: FlagSpec) -> &mut Self {
        self.specs.push(spec);
        self
    }

    /// Add many specs.
    pub fn extend(&mut self, specs: impl IntoIterator<Item = FlagSpec>) -> &mut Self {
        self.specs.extend(specs);
        self
    }

    /// Validate and freeze into a [`Registry`].
    pub fn build(self) -> Result<Registry, ValidationError> {
        if self.specs.len() > u16::MAX as usize {
            return Err(ValidationError::TooManyFlags(self.specs.len()));
        }
        let mut by_name = HashMap::with_capacity(self.specs.len());
        for (i, spec) in self.specs.iter().enumerate() {
            if by_name.insert(spec.name, FlagId(i as u16)).is_some() {
                return Err(ValidationError::DuplicateName(spec.name));
            }
            if !spec.domain.contains(spec.default) {
                return Err(ValidationError::DefaultOutOfDomain(spec.name));
            }
        }
        let tunable: Vec<FlagId> = self
            .specs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.tunable())
            .map(|(i, _)| FlagId(i as u16))
            .collect();
        Ok(Registry {
            specs: self.specs,
            by_name,
            tunable,
        })
    }
}

/// A frozen table of flag specifications with O(1) id- and name-lookup.
#[derive(Debug)]
pub struct Registry {
    specs: Vec<FlagSpec>,
    by_name: HashMap<&'static str, FlagId>,
    tunable: Vec<FlagId>,
}

impl Registry {
    /// Number of flags.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the registry holds no flags.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Spec by dense id.
    ///
    /// # Panics
    /// Panics if `id` is out of range (ids are only minted by this
    /// registry, so an out-of-range id is a cross-registry bug).
    pub fn spec(&self, id: FlagId) -> &FlagSpec {
        &self.specs[id.index()]
    }

    /// Look up a flag id by `-XX:` name.
    pub fn id(&self, name: &str) -> Option<FlagId> {
        self.by_name.get(name).copied()
    }

    /// Look up a flag id by name, erroring with the name on failure.
    pub fn require(&self, name: &str) -> Result<FlagId, ValidationError> {
        self.id(name)
            .ok_or_else(|| ValidationError::UnknownFlag(name.to_string()))
    }

    /// Iterate over `(id, spec)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FlagId, &FlagSpec)> {
        self.specs
            .iter()
            .enumerate()
            .map(|(i, s)| (FlagId(i as u16), s))
    }

    /// Ids of all flags the tuner may set (non-develop).
    pub fn tunable_ids(&self) -> &[FlagId] {
        &self.tunable
    }

    /// Ids of tunable flags in one category.
    pub fn ids_in_category(&self, cat: Category) -> Vec<FlagId> {
        self.iter()
            .filter(|(_, s)| s.category == cat && s.tunable())
            .map(|(id, _)| id)
            .collect()
    }

    /// The default value of every flag, indexed by id — the JVM's
    /// out-of-the-box configuration.
    pub fn default_values(&self) -> Vec<FlagValue> {
        self.specs.iter().map(|s| s.default).collect()
    }

    /// Check one value against one flag's domain.
    pub fn check(&self, id: FlagId, value: FlagValue) -> Result<(), ValidationError> {
        let spec = self.spec(id);
        if spec.domain.contains(value) {
            Ok(())
        } else {
            Err(ValidationError::ValueOutOfDomain {
                flag: spec.name.to_string(),
                value: value.to_string(),
            })
        }
    }
}

/// The shared JDK-7 HotSpot registry (600+ flags), built once.
pub fn hotspot_registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut b = RegistryBuilder::new();
        crate::data::populate(&mut b);
        b.build()
            .expect("the built-in HotSpot flag table must validate")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FlagKind;
    use crate::value::Domain;

    fn mini_spec(name: &'static str) -> FlagSpec {
        FlagSpec {
            name,
            category: Category::Misc,
            domain: Domain::Bool,
            default: FlagValue::Bool(false),
            kind: FlagKind::Product,
            is_size: false,
            perf: false,
            desc: "test flag",
        }
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = RegistryBuilder::new();
        b.push(mini_spec("X")).push(mini_spec("X"));
        assert_eq!(b.build().unwrap_err(), ValidationError::DuplicateName("X"));
    }

    #[test]
    fn default_out_of_domain_rejected() {
        let mut b = RegistryBuilder::new();
        b.push(FlagSpec {
            domain: Domain::IntRange {
                lo: 0,
                hi: 10,
                log_scale: false,
            },
            default: FlagValue::Int(99),
            ..mini_spec("Bad")
        });
        assert_eq!(
            b.build().unwrap_err(),
            ValidationError::DefaultOutOfDomain("Bad")
        );
    }

    #[test]
    fn lookup_by_name_and_id() {
        let mut b = RegistryBuilder::new();
        b.push(mini_spec("A")).push(mini_spec("B"));
        let r = b.build().unwrap();
        let a = r.id("A").unwrap();
        assert_eq!(r.spec(a).name, "A");
        assert_eq!(r.id("C"), None);
        assert!(matches!(
            r.require("C"),
            Err(ValidationError::UnknownFlag(_))
        ));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn develop_flags_excluded_from_tunable() {
        let mut b = RegistryBuilder::new();
        b.push(mini_spec("P"));
        b.push(FlagSpec {
            kind: FlagKind::Develop,
            ..mini_spec("D")
        });
        let r = b.build().unwrap();
        assert_eq!(r.tunable_ids().len(), 1);
        assert_eq!(r.spec(r.tunable_ids()[0]).name, "P");
    }

    #[test]
    fn check_validates_values() {
        let mut b = RegistryBuilder::new();
        b.push(FlagSpec {
            domain: Domain::IntRange {
                lo: 1,
                hi: 5,
                log_scale: false,
            },
            default: FlagValue::Int(3),
            ..mini_spec("N")
        });
        let r = b.build().unwrap();
        let id = r.id("N").unwrap();
        assert!(r.check(id, FlagValue::Int(5)).is_ok());
        assert!(r.check(id, FlagValue::Int(6)).is_err());
        assert!(r.check(id, FlagValue::Bool(true)).is_err());
    }

    #[test]
    fn hotspot_registry_has_over_600_flags() {
        // The paper: "the Hot Spot JVM comes with over 600 flags".
        let r = hotspot_registry();
        assert!(r.len() > 600, "only {} flags", r.len());
    }

    #[test]
    fn hotspot_registry_key_flags_present() {
        let r = hotspot_registry();
        for name in [
            "UseSerialGC",
            "UseParallelGC",
            "UseConcMarkSweepGC",
            "UseG1GC",
            "MaxHeapSize",
            "NewRatio",
            "SurvivorRatio",
            "TieredCompilation",
            "CompileThreshold",
            "MaxInlineSize",
            "ReservedCodeCacheSize",
            "UseBiasedLocking",
            "UseCompressedOops",
            "UseLargePages",
            "ParallelGCThreads",
            "CMSInitiatingOccupancyFraction",
            "MaxGCPauseMillis",
            "UseTLAB",
        ] {
            assert!(r.id(name).is_some(), "missing flag {name}");
        }
    }

    #[test]
    fn hotspot_registry_defaults_all_valid() {
        let r = hotspot_registry();
        for (id, spec) in r.iter() {
            assert!(
                spec.domain.contains(spec.default),
                "default of {} out of domain",
                spec.name
            );
            assert!(r.check(id, spec.default).is_ok());
        }
    }
}
