//! Flag values and domains.

use std::fmt;

/// A runtime value of a JVM flag.
///
/// Compact by design: configurations hold one `FlagValue` per flag in a
/// dense vector, so this enum stays 16 bytes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FlagValue {
    /// A `-XX:+Flag` / `-XX:-Flag` boolean.
    Bool(bool),
    /// An integer flag (`intx` / `uintx` / size-in-bytes in HotSpot terms).
    Int(i64),
    /// A floating-point flag (`double` in HotSpot terms).
    Double(f64),
    /// An enumerated choice, stored as an index into the domain's variants.
    Enum(u16),
}

impl FlagValue {
    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            FlagValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(self) -> Option<i64> {
        match self {
            FlagValue::Int(i) => Some(i),
            _ => None,
        }
    }

    /// The floating payload, if this is a `Double`.
    pub fn as_double(self) -> Option<f64> {
        match self {
            FlagValue::Double(d) => Some(d),
            _ => None,
        }
    }

    /// The enum index, if this is an `Enum`.
    pub fn as_enum(self) -> Option<u16> {
        match self {
            FlagValue::Enum(e) => Some(e),
            _ => None,
        }
    }

    /// A total, deterministic hash key for deduplicating configurations.
    /// (`f64` is keyed by bit pattern; NaN never appears in valid configs.)
    pub fn hash_key(self) -> u64 {
        match self {
            FlagValue::Bool(b) => 0x1000_0000_0000_0000 | b as u64,
            FlagValue::Int(i) => 0x2000_0000_0000_0000 ^ i as u64,
            FlagValue::Double(d) => 0x3000_0000_0000_0000 ^ d.to_bits(),
            FlagValue::Enum(e) => 0x4000_0000_0000_0000 | e as u64,
        }
    }
}

impl fmt::Display for FlagValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlagValue::Bool(b) => write!(f, "{b}"),
            FlagValue::Int(i) => write!(f, "{i}"),
            FlagValue::Double(d) => write!(f, "{d}"),
            FlagValue::Enum(e) => write!(f, "#{e}"),
        }
    }
}

/// The set of values a flag may take, plus how the tuner should move
/// through it.
#[derive(Clone, Debug, PartialEq)]
pub enum Domain {
    /// On/off.
    Bool,
    /// Integer range, inclusive on both ends.
    ///
    /// `log_scale` marks flags whose useful values span orders of magnitude
    /// (heap sizes, thresholds): the tuner mutates them multiplicatively
    /// and samples them log-uniformly.
    IntRange {
        /// Smallest allowed value.
        lo: i64,
        /// Largest allowed value.
        hi: i64,
        /// Sample/mutate on a logarithmic scale.
        log_scale: bool,
    },
    /// Floating-point range, inclusive.
    DoubleRange {
        /// Smallest allowed value.
        lo: f64,
        /// Largest allowed value.
        hi: f64,
    },
    /// One of a fixed set of named variants.
    Enum {
        /// Variant names, in index order.
        variants: &'static [&'static str],
    },
}

impl Domain {
    /// Number of distinct values, `None` for (effectively) continuous
    /// domains. Used by the search-space-size computation (experiment E3).
    pub fn cardinality(&self) -> Option<u128> {
        match self {
            Domain::Bool => Some(2),
            Domain::IntRange { lo, hi, .. } => Some((*hi as i128 - *lo as i128 + 1) as u128),
            Domain::DoubleRange { .. } => None,
            Domain::Enum { variants } => Some(variants.len() as u128),
        }
    }

    /// log10 of the cardinality; continuous domains are counted as a
    /// conventional 10^3 grid (the paper's tuner discretises them too).
    pub fn log10_cardinality(&self) -> f64 {
        match self.cardinality() {
            Some(n) => (n as f64).log10(),
            None => 3.0,
        }
    }

    /// Does `v` belong to this domain (type and range)?
    pub fn contains(&self, v: FlagValue) -> bool {
        match (self, v) {
            (Domain::Bool, FlagValue::Bool(_)) => true,
            (Domain::IntRange { lo, hi, .. }, FlagValue::Int(i)) => *lo <= i && i <= *hi,
            (Domain::DoubleRange { lo, hi }, FlagValue::Double(d)) => {
                d.is_finite() && *lo <= d && d <= *hi
            }
            (Domain::Enum { variants }, FlagValue::Enum(e)) => (e as usize) < variants.len(),
            _ => false,
        }
    }

    /// Clamp a value into the domain (same type required).
    ///
    /// Returns `None` when the value's type does not match the domain.
    pub fn clamp(&self, v: FlagValue) -> Option<FlagValue> {
        match (self, v) {
            (Domain::Bool, FlagValue::Bool(b)) => Some(FlagValue::Bool(b)),
            (Domain::IntRange { lo, hi, .. }, FlagValue::Int(i)) => {
                Some(FlagValue::Int(i.clamp(*lo, *hi)))
            }
            (Domain::DoubleRange { lo, hi }, FlagValue::Double(d)) => {
                if d.is_nan() {
                    Some(FlagValue::Double(*lo))
                } else {
                    Some(FlagValue::Double(d.clamp(*lo, *hi)))
                }
            }
            (Domain::Enum { variants }, FlagValue::Enum(e)) => Some(FlagValue::Enum(
                e.min(variants.len().saturating_sub(1) as u16),
            )),
            _ => None,
        }
    }
}

/// Render a byte count the way HotSpot accepts it: exact multiples of
/// G/M/K collapse to the suffix form (`512m`), anything else is plain bytes.
pub fn render_size(bytes: i64) -> String {
    const K: i64 = 1024;
    const M: i64 = 1024 * 1024;
    const G: i64 = 1024 * 1024 * 1024;
    if bytes != 0 && bytes % G == 0 {
        format!("{}g", bytes / G)
    } else if bytes != 0 && bytes % M == 0 {
        format!("{}m", bytes / M)
    } else if bytes != 0 && bytes % K == 0 {
        format!("{}k", bytes / K)
    } else {
        format!("{bytes}")
    }
}

/// Parse a HotSpot size literal (`512m`, `64K`, `2g`, `1048576`).
pub fn parse_size(s: &str) -> Option<i64> {
    if s.is_empty() {
        return None;
    }
    let (num, mult) = match s.as_bytes()[s.len() - 1].to_ascii_lowercase() {
        b'k' => (&s[..s.len() - 1], 1024i64),
        b'm' => (&s[..s.len() - 1], 1024 * 1024),
        b'g' => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        b't' => (&s[..s.len() - 1], 1024i64.pow(4)),
        _ => (s, 1),
    };
    num.parse::<i64>().ok()?.checked_mul(mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_value_is_small() {
        assert!(std::mem::size_of::<FlagValue>() <= 16);
    }

    #[test]
    fn accessors_match_variants() {
        assert_eq!(FlagValue::Bool(true).as_bool(), Some(true));
        assert_eq!(FlagValue::Bool(true).as_int(), None);
        assert_eq!(FlagValue::Int(7).as_int(), Some(7));
        assert_eq!(FlagValue::Double(1.5).as_double(), Some(1.5));
        assert_eq!(FlagValue::Enum(3).as_enum(), Some(3));
    }

    #[test]
    fn hash_keys_distinguish_types_and_values() {
        let keys = [
            FlagValue::Bool(false).hash_key(),
            FlagValue::Bool(true).hash_key(),
            FlagValue::Int(0).hash_key(),
            FlagValue::Int(1).hash_key(),
            FlagValue::Double(0.0).hash_key(),
            FlagValue::Enum(0).hash_key(),
        ];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "collision between {i} and {j}");
            }
        }
    }

    #[test]
    fn domain_cardinalities() {
        assert_eq!(Domain::Bool.cardinality(), Some(2));
        assert_eq!(
            Domain::IntRange {
                lo: 1,
                hi: 10,
                log_scale: false
            }
            .cardinality(),
            Some(10)
        );
        assert_eq!(
            Domain::Enum {
                variants: &["a", "b", "c"]
            }
            .cardinality(),
            Some(3)
        );
        assert_eq!(Domain::DoubleRange { lo: 0.0, hi: 1.0 }.cardinality(), None);
        assert!((Domain::DoubleRange { lo: 0.0, hi: 1.0 }.log10_cardinality() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn contains_checks_type_and_range() {
        let d = Domain::IntRange {
            lo: 0,
            hi: 100,
            log_scale: false,
        };
        assert!(d.contains(FlagValue::Int(0)));
        assert!(d.contains(FlagValue::Int(100)));
        assert!(!d.contains(FlagValue::Int(101)));
        assert!(!d.contains(FlagValue::Bool(true)));
        let e = Domain::Enum {
            variants: &["x", "y"],
        };
        assert!(e.contains(FlagValue::Enum(1)));
        assert!(!e.contains(FlagValue::Enum(2)));
        let f = Domain::DoubleRange { lo: 0.0, hi: 1.0 };
        assert!(!f.contains(FlagValue::Double(f64::NAN)));
    }

    #[test]
    fn clamp_pulls_into_range() {
        let d = Domain::IntRange {
            lo: 10,
            hi: 20,
            log_scale: true,
        };
        assert_eq!(d.clamp(FlagValue::Int(5)), Some(FlagValue::Int(10)));
        assert_eq!(d.clamp(FlagValue::Int(25)), Some(FlagValue::Int(20)));
        assert_eq!(d.clamp(FlagValue::Int(15)), Some(FlagValue::Int(15)));
        assert_eq!(d.clamp(FlagValue::Bool(true)), None);
        let f = Domain::DoubleRange { lo: 0.0, hi: 1.0 };
        assert_eq!(
            f.clamp(FlagValue::Double(f64::NAN)),
            Some(FlagValue::Double(0.0))
        );
        let e = Domain::Enum {
            variants: &["a", "b"],
        };
        assert_eq!(e.clamp(FlagValue::Enum(9)), Some(FlagValue::Enum(1)));
    }

    #[test]
    fn size_rendering_collapses_multiples() {
        assert_eq!(render_size(512 * 1024 * 1024), "512m");
        assert_eq!(render_size(2 * 1024 * 1024 * 1024), "2g");
        assert_eq!(render_size(64 * 1024), "64k");
        assert_eq!(render_size(1000), "1000");
        assert_eq!(render_size(0), "0");
    }

    #[test]
    fn size_parsing_accepts_hotspot_forms() {
        assert_eq!(parse_size("512m"), Some(512 * 1024 * 1024));
        assert_eq!(parse_size("2G"), Some(2 * 1024 * 1024 * 1024));
        assert_eq!(parse_size("64K"), Some(64 * 1024));
        assert_eq!(parse_size("12345"), Some(12345));
        assert_eq!(parse_size(""), None);
        assert_eq!(parse_size("12x"), None);
    }

    #[test]
    fn size_round_trips() {
        for v in [0i64, 1024, 65536, 512 << 20, 3 << 30] {
            assert_eq!(parse_size(&render_size(v)), Some(v));
        }
    }
}
