//! Static flag specifications.

use crate::value::{Domain, FlagValue};

/// Dense index of a flag within a [`crate::Registry`].
///
/// Configurations are vectors indexed by `FlagId`, so all per-flag lookups
/// in the tuner's hot paths are O(1) array accesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlagId(pub u16);

impl FlagId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Which JVM subsystem a flag belongs to.
///
/// Categories are the *nodes of the paper's flag hierarchy*: the tree in
/// `jtune-flagtree` groups flags by category and gates whole categories on
/// selector flags (e.g. all of [`Category::GcCms`] is inactive unless
/// `UseConcMarkSweepGC` is on).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Heap geometry: sizes, ratios, generation boundaries.
    Heap,
    /// GC behaviour shared by all collectors (ergonomics, System.gc, …).
    GcCommon,
    /// Serial collector (`UseSerialGC`) specifics.
    GcSerial,
    /// Parallel scavenge / parallel-old specifics.
    GcParallel,
    /// Concurrent-mark-sweep specifics.
    GcCms,
    /// Garbage-First specifics.
    GcG1,
    /// JIT compilation policy: tiers, thresholds, compiler counts.
    Jit,
    /// Inlining heuristics.
    Inlining,
    /// Code cache sizing and sweeping.
    CodeCache,
    /// Interpreter behaviour.
    Interpreter,
    /// Object/locking runtime: biased locking, spinning, monitors.
    Locking,
    /// Memory system: TLABs, prefetch, compressed oops, large pages, NUMA.
    Memory,
    /// Threading: stack sizes, thread counts, safepoints.
    Threads,
    /// Class loading, verification, class-data sharing.
    ClassLoading,
    /// Compiler escape analysis / optimisation toggles.
    Optimization,
    /// Printing, tracing, diagnostics — semantically inert for performance
    /// but part of the real flag surface.
    Diagnostics,
    /// Everything else (assertions, compatibility, OS integration).
    Misc,
}

impl Category {
    /// All categories, in display order.
    pub const ALL: [Category; 17] = [
        Category::Heap,
        Category::GcCommon,
        Category::GcSerial,
        Category::GcParallel,
        Category::GcCms,
        Category::GcG1,
        Category::Jit,
        Category::Inlining,
        Category::CodeCache,
        Category::Interpreter,
        Category::Locking,
        Category::Memory,
        Category::Threads,
        Category::ClassLoading,
        Category::Optimization,
        Category::Diagnostics,
        Category::Misc,
    ];

    /// Human-readable name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Category::Heap => "heap",
            Category::GcCommon => "gc.common",
            Category::GcSerial => "gc.serial",
            Category::GcParallel => "gc.parallel",
            Category::GcCms => "gc.cms",
            Category::GcG1 => "gc.g1",
            Category::Jit => "jit",
            Category::Inlining => "jit.inlining",
            Category::CodeCache => "jit.codecache",
            Category::Interpreter => "interpreter",
            Category::Locking => "runtime.locking",
            Category::Memory => "runtime.memory",
            Category::Threads => "runtime.threads",
            Category::ClassLoading => "runtime.classloading",
            Category::Optimization => "jit.optimization",
            Category::Diagnostics => "diagnostics",
            Category::Misc => "misc",
        }
    }
}

/// HotSpot's flag classification (from `globals.hpp`). The paper tunes
/// *product* and *manageable* flags; develop/notproduct flags exist in the
/// registry for fidelity but are excluded from the search space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlagKind {
    /// Officially supported (`product`).
    Product,
    /// Requires `-XX:+UnlockDiagnosticVMOptions`.
    Diagnostic,
    /// Requires `-XX:+UnlockExperimentalVMOptions`.
    Experimental,
    /// Adjustable at run time via JMX (`manageable`).
    Manageable,
    /// Debug-build only (`develop` / `notproduct`): present in the flag
    /// table but never tuned.
    Develop,
}

impl FlagKind {
    /// Whether the auto-tuner may legally set this flag on a release JVM.
    pub fn tunable(self) -> bool {
        !matches!(self, FlagKind::Develop)
    }
}

/// One flag's complete static description.
#[derive(Clone, Debug)]
pub struct FlagSpec {
    /// The `-XX:` name, e.g. `"UseG1GC"`.
    pub name: &'static str,
    /// Subsystem the flag belongs to.
    pub category: Category,
    /// Allowed values and tuning scale.
    pub domain: Domain,
    /// JDK-7 default value.
    pub default: FlagValue,
    /// HotSpot classification.
    pub kind: FlagKind,
    /// Whether this flag is rendered as a byte size (`512m`) on the
    /// command line.
    pub is_size: bool,
    /// Whether the simulator's performance model reads this flag.
    ///
    /// This is metadata *about the reproduction*, not about HotSpot: tests
    /// use it to verify that inert flags really are inert and experiments
    /// use it to report how much of the search space is dead weight.
    pub perf: bool,
    /// One-line description (from `globals.hpp`, lightly abbreviated).
    pub desc: &'static str,
}

impl FlagSpec {
    /// Is this flag part of the tunable search space?
    pub fn tunable(&self) -> bool {
        self.kind.tunable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_names_unique() {
        let mut names: Vec<&str> = Category::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Category::ALL.len());
    }

    #[test]
    fn develop_flags_not_tunable() {
        assert!(!FlagKind::Develop.tunable());
        assert!(FlagKind::Product.tunable());
        assert!(FlagKind::Diagnostic.tunable());
        assert!(FlagKind::Experimental.tunable());
        assert!(FlagKind::Manageable.tunable());
    }

    #[test]
    fn flag_id_round_trips() {
        assert_eq!(FlagId(42).index(), 42);
    }
}
