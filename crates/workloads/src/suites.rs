//! The SPECjvm2008-startup and DaCapo profile tables.
//!
//! Characteristics are derived from the public descriptions and published
//! analyses of each benchmark (what it computes, how it allocates, how
//! parallel it is). The comment on each entry says which levers the
//! auto-tuner is expected to find for it — that is the mechanism through
//! which the paper's per-suite improvement distribution emerges.

use jtune_jvmsim::Workload;

#[allow(clippy::too_many_arguments)]
fn wl(
    name: &str,
    total_work: f64,
    threads: u32,
    alloc_rate: f64,
    live_mb: f64,
    nursery_survival: f64,
    hot_methods: u32,
    hotness_skew: f64,
    mean_method_size: f64,
    call_density: f64,
    lock_density: f64,
    lock_contention: f64,
    pointer_density: f64,
    array_stream_fraction: f64,
    fp_fraction: f64,
    classes_loaded: u32,
) -> Workload {
    let w = Workload {
        name: name.to_string(),
        total_work,
        threads,
        alloc_rate,
        mean_object_size: 48.0,
        humongous_fraction: 0.0,
        nursery_survival,
        mid_life_fraction: 0.35,
        live_set: live_mb * 1e6,
        hot_methods,
        hotness_skew,
        mean_method_size,
        call_density,
        lock_density,
        lock_contention,
        pointer_density,
        array_stream_fraction,
        fp_fraction,
        classes_loaded,
    };
    debug_assert_eq!(w.validate(), Ok(()));
    w
}

/// The 16 SPECjvm2008 *startup* programs.
///
/// Startup runs execute one iteration from a cold JVM, so `total_work` is
/// small and JIT warm-up plus class loading dominate — which is why the
/// paper's tuner wins mainly by enabling tiered compilation, lowering
/// compile thresholds and sizing the young generation for the burst.
pub fn specjvm2008_startup() -> Vec<Workload> {
    vec![
        // javac compiling itself: enormous flat method working set, call-
        // and pointer-dense, class-heavy. Warm-up never completes under the
        // classic policy → tiered is transformative (paper-scale gain).
        wl(
            "compiler.compiler",
            1.1e9,
            1,
            2.3,
            105.0,
            0.115,
            1000,
            0.90,
            95.0,
            0.045,
            0.0006,
            0.05,
            0.55,
            0.08,
            0.03,
            9500,
        ),
        // javac compiling the sunflow sources: same engine, smaller corpus.
        wl(
            "compiler.sunflow",
            9.0e8,
            1,
            1.5,
            70.0,
            0.10,
            650,
            0.92,
            95.0,
            0.040,
            0.0006,
            0.05,
            0.55,
            0.08,
            0.03,
            8800,
        ),
        // LZW compression: one hot loop nest over byte arrays; warms up
        // almost instantly, little for the tuner beyond prefetch/unroll.
        wl(
            "compress", 1.4e9, 1, 0.15, 12.0, 0.03, 45, 1.60, 55.0, 0.012, 0.0001, 0.01, 0.10,
            0.85, 0.10, 2100,
        ),
        // AES/DES en/decryption: tight intrinsic-friendly kernels.
        wl(
            "crypto.aes",
            1.2e9,
            1,
            0.25,
            15.0,
            0.03,
            90,
            1.45,
            70.0,
            0.015,
            0.0001,
            0.01,
            0.12,
            0.60,
            0.30,
            2400,
        ),
        // RSA: BigInteger arithmetic, modest method set, some allocation.
        wl(
            "crypto.rsa",
            1.0e9,
            1,
            0.75,
            20.0,
            0.06,
            160,
            1.30,
            80.0,
            0.020,
            0.0001,
            0.01,
            0.25,
            0.45,
            0.35,
            2500,
        ),
        // Sign/verify mixes hashing and BigInteger: broader code, slower
        // warm-up than the other crypto kernels.
        wl(
            "crypto.signverify",
            9.5e8,
            1,
            0.80,
            22.0,
            0.06,
            320,
            1.10,
            85.0,
            0.024,
            0.0002,
            0.01,
            0.30,
            0.40,
            0.30,
            2900,
        ),
        // MP3 decoding: floating-point filter banks over arrays.
        wl(
            "mpegaudio",
            1.2e9,
            1,
            0.35,
            14.0,
            0.04,
            170,
            1.30,
            75.0,
            0.020,
            0.0001,
            0.01,
            0.15,
            0.70,
            0.55,
            2300,
        ),
        // SciMark kernels: tiny numeric loops, instant warm-up; gains come
        // only from code-gen flags (unroll, superword, prefetch).
        wl(
            "scimark.fft",
            1.3e9,
            1,
            0.10,
            24.0,
            0.02,
            22,
            1.70,
            60.0,
            0.010,
            0.0001,
            0.01,
            0.08,
            0.90,
            0.65,
            1900,
        ),
        wl(
            "scimark.lu",
            1.3e9,
            1,
            0.10,
            28.0,
            0.02,
            20,
            1.70,
            60.0,
            0.010,
            0.0001,
            0.01,
            0.08,
            0.92,
            0.60,
            1900,
        ),
        wl(
            "scimark.sor",
            1.3e9,
            1,
            0.08,
            20.0,
            0.02,
            18,
            1.70,
            55.0,
            0.010,
            0.0001,
            0.01,
            0.08,
            0.92,
            0.55,
            1900,
        ),
        wl(
            "scimark.sparse",
            1.2e9,
            1,
            0.12,
            30.0,
            0.02,
            22,
            1.65,
            60.0,
            0.010,
            0.0001,
            0.01,
            0.20,
            0.85,
            0.55,
            1900,
        ),
        wl(
            "scimark.monte_carlo",
            1.2e9,
            1,
            0.06,
            10.0,
            0.02,
            16,
            1.75,
            50.0,
            0.010,
            0.0001,
            0.01,
            0.06,
            0.60,
            0.70,
            1900,
        ),
        // Object-graph serialization: the most allocation- and pointer-
        // intensive startup program; default eden drowns in scavenges while
        // the classic JIT is still interpreting — the biggest headroom in
        // the suite (the paper reports a 63 % best case).
        wl(
            "serial", 8.5e8, 1, 5.2, 195.0, 0.155, 1400, 0.66, 70.0, 0.045, 0.0004, 0.03, 0.70,
            0.15, 0.05, 6200,
        ),
        // Ray tracer: fp-heavy with a mid-size method set; runs 4 render
        // threads even in startup mode.
        wl(
            "sunflow", 2.2e9, 4, 1.1, 45.0, 0.06, 380, 1.02, 80.0, 0.016, 0.0008, 0.06, 0.35, 0.50,
            0.60, 3600,
        ),
        // XSLT transform: call-dense visitor pattern over DOM trees.
        wl(
            "xml.transform",
            1.0e9,
            1,
            2.2,
            85.0,
            0.10,
            950,
            0.88,
            85.0,
            0.035,
            0.0005,
            0.04,
            0.60,
            0.12,
            0.05,
            7400,
        ),
        // Schema validation: parser + validator, extremely allocation- and
        // class-heavy with a flat profile — the paper's second-largest gain.
        wl(
            "xml.validation",
            9.0e8,
            1,
            5.0,
            170.0,
            0.145,
            1300,
            0.72,
            80.0,
            0.042,
            0.0005,
            0.04,
            0.65,
            0.12,
            0.05,
            8200,
        ),
    ]
}

/// 13 DaCapo 9.12 programs (the suite minus `tradesoap`, matching the
/// paper's count).
///
/// DaCapo iterations run long enough that warm-up amortises; the headroom
/// is in the memory system — live sets near or beyond the default 1 GB
/// heap's old generation, allocation rates that swamp the default young
/// generation, and contention patterns that punish the default collector.
pub fn dacapo() -> Vec<Workload> {
    vec![
        // AVR micro-controller simulation: many tiny objects, fine-grained
        // synchronisation between simulated nodes, small live set.
        wl(
            "avrora", 5.0e9, 2, 0.50, 60.0, 0.05, 380, 1.00, 60.0, 0.015, 0.0080, 0.28, 0.35, 0.20,
            0.10, 3900,
        ),
        // SVG rendering: bursty allocation of short-lived geometry.
        wl(
            "batik", 4.0e9, 1, 2.9, 130.0, 0.09, 1000, 0.82, 80.0, 0.022, 0.0004, 0.03, 0.45, 0.35,
            0.30, 5600,
        ),
        // Eclipse IDE workloads: the biggest live set and class count in
        // the suite; the default heap barely fits it.
        wl(
            "eclipse", 9.0e9, 2, 1.55, 395.0, 0.11, 2600, 0.70, 90.0, 0.034, 0.0030, 0.10, 0.60,
            0.10, 0.05, 16500,
        ),
        // XSL-FO to PDF: allocation-heavy tree building, single-threaded.
        wl(
            "fop", 3.0e9, 1, 3.3, 95.0, 0.10, 1400, 0.73, 85.0, 0.030, 0.0003, 0.02, 0.55, 0.15,
            0.10, 6800,
        ),
        // In-memory JDBC database: huge live set, high allocation, lock
        // traffic on the transaction engine — the paper's biggest DaCapo
        // win comes from heap + collector choice here.
        wl(
            "h2", 8.0e9, 4, 2.05, 270.0, 0.085, 1100, 0.80, 75.0, 0.026, 0.0060, 0.22, 0.65, 0.15,
            0.05, 5200,
        ),
        // Python interpreter on the JVM: megamorphic call sites, flat
        // method profile, constant allocation of frame objects.
        wl(
            "jython", 6.0e9, 1, 2.4, 180.0, 0.09, 3600, 0.55, 70.0, 0.048, 0.0005, 0.03, 0.60,
            0.08, 0.05, 9800,
        ),
        // Lucene indexing: streaming text, moderate allocation.
        wl(
            "luindex", 3.5e9, 1, 2.1, 85.0, 0.07, 560, 0.92, 70.0, 0.018, 0.0003, 0.02, 0.40, 0.45,
            0.10, 4100,
        ),
        // Lucene search: embarrassingly parallel query threads with a
        // shared index — allocation spikes and some contention.
        wl(
            "lusearch", 4.5e9, 8, 2.3, 100.0, 0.06, 480, 1.00, 65.0, 0.020, 0.0040, 0.28, 0.45,
            0.40, 0.08, 4000,
        ),
        // Source-code analysis: AST walking, pointer-chasing, mid live set.
        wl(
            "pmd", 4.0e9, 2, 2.0, 170.0, 0.08, 1500, 0.70, 85.0, 0.032, 0.0010, 0.06, 0.65, 0.10,
            0.05, 7600,
        ),
        // Ray tracer (DaCapo variant): fp kernels across 4 threads.
        wl(
            "sunflow", 5.0e9, 4, 1.2, 60.0, 0.06, 500, 1.00, 80.0, 0.020, 0.0010, 0.08, 0.35, 0.50,
            0.60, 3800,
        ),
        // Servlet container replaying requests: many threads, classes and
        // monitors; session state keeps a sizeable live set.
        wl(
            "tomcat", 6.0e9, 8, 1.45, 185.0, 0.075, 1600, 0.75, 80.0, 0.030, 0.0070, 0.20, 0.55,
            0.12, 0.05, 12500,
        ),
        // Daytrader on EJB: transactional object churn over a large
        // session/entity cache.
        wl(
            "tradebeans",
            7.0e9,
            4,
            1.85,
            215.0,
            0.095,
            1750,
            0.68,
            80.0,
            0.030,
            0.0050,
            0.20,
            0.60,
            0.10,
            0.05,
            11000,
        ),
        // Multi-threaded XSLT: the suite's allocation-rate extreme with
        // hot lock contention on shared output buffers.
        wl(
            "xalan", 5.0e9, 8, 2.3, 140.0, 0.06, 1500, 0.75, 80.0, 0.034, 0.0090, 0.35, 0.55, 0.15,
            0.05, 6900,
        ),
    ]
}

/// Look up any built-in workload by suite-qualified or bare name.
///
/// Bare names resolve SPECjvm2008 first (`"sunflow"` appears in both
/// suites; use `"dacapo:sunflow"` / `"spec:sunflow"` to disambiguate).
pub fn workload_by_name(name: &str) -> Option<Workload> {
    if let Some(bare) = name.strip_prefix("spec:") {
        return specjvm2008_startup().into_iter().find(|w| w.name == bare);
    }
    if let Some(bare) = name.strip_prefix("dacapo:") {
        return dacapo().into_iter().find(|w| w.name == bare);
    }
    specjvm2008_startup()
        .into_iter()
        .chain(dacapo())
        .find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_16_and_13() {
        assert_eq!(specjvm2008_startup().len(), 16);
        assert_eq!(dacapo().len(), 13);
    }

    #[test]
    fn all_profiles_validate() {
        for w in specjvm2008_startup().into_iter().chain(dacapo()) {
            assert_eq!(w.validate(), Ok(()), "{} invalid", w.name);
        }
    }

    #[test]
    fn names_unique_within_suites() {
        for suite in [specjvm2008_startup(), dacapo()] {
            let mut names: Vec<String> = suite.iter().map(|w| w.name.clone()).collect();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), suite.len());
        }
    }

    #[test]
    fn startup_suite_is_startup_sensitive() {
        for w in specjvm2008_startup() {
            assert!(
                w.startup_sensitive(),
                "{} not startup sensitive (work {})",
                w.name,
                w.total_work
            );
        }
    }

    #[test]
    fn dacapo_is_heap_heavier_than_startup_suite() {
        let avg = |ws: &[Workload]| -> f64 {
            ws.iter().map(|w| w.live_set).sum::<f64>() / ws.len() as f64
        };
        assert!(avg(&dacapo()) > 2.0 * avg(&specjvm2008_startup()));
    }

    #[test]
    fn lookup_by_name_and_prefix() {
        assert!(workload_by_name("compress").is_some());
        assert!(workload_by_name("h2").is_some());
        assert!(workload_by_name("nope").is_none());
        // Ambiguous name resolves per suite prefix.
        let spec = workload_by_name("spec:sunflow").unwrap();
        let dac = workload_by_name("dacapo:sunflow").unwrap();
        assert!(dac.total_work > spec.total_work);
        assert!(workload_by_name("spec:h2").is_none());
    }
}
