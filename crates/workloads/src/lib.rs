//! # jtune-workloads
//!
//! Workload models for the two benchmark suites the paper evaluates on:
//!
//! - [`specjvm2008_startup`] — the 16 SPECjvm2008 *startup* programs
//!   (single short iteration from a cold JVM: warm-up and class loading are
//!   first-order costs);
//! - [`dacapo`] — 13 DaCapo 9.12 programs (longer, heap- and GC-bound
//!   iterations).
//!
//! Each profile is a [`Workload`] characteristics vector chosen from the
//! public behaviour of the real program (see the per-entry comments in
//! [`suites`]). The *reproduction claim* is distributional, not
//! per-program: the population of profiles gives the paper's headroom
//! shape (SPECjvm2008 avg ≈ 19 % with a heavy right tail 63/51/32 %;
//! DaCapo avg ≈ 26 %, max ≈ 42 %) under the simulated JVM. EXPERIMENTS.md
//! records how close the tuned results land.
//!
//! [`synth`] generates random-but-plausible workloads from a seed, used by
//! property tests and the tuner's stress experiments.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod suites;
pub mod synth;

pub use jtune_jvmsim::Workload;
pub use suites::{dacapo, specjvm2008_startup, workload_by_name};
pub use synth::SyntheticGenerator;
