//! Synthetic workload generation.
//!
//! Random-but-plausible workloads for property tests ("the tuner never
//! makes a workload slower than default, whatever the workload") and for
//! tuner stress experiments beyond the two paper suites.

use jtune_jvmsim::Workload;
use jtune_util::{Rng, Xoshiro256pp};

/// Seeded generator of plausible workloads.
#[derive(Clone, Debug)]
pub struct SyntheticGenerator {
    rng: Xoshiro256pp,
    counter: u64,
}

impl SyntheticGenerator {
    /// Create a generator; each seed yields a distinct reproducible stream.
    pub fn new(seed: u64) -> SyntheticGenerator {
        SyntheticGenerator {
            rng: Xoshiro256pp::seed_from_u64(seed ^ 0x73_796e_7468),
            counter: 0,
        }
    }

    /// Produce the next workload in the stream.
    pub fn next_workload(&mut self) -> Workload {
        self.counter += 1;
        let r = &mut self.rng;
        // Log-uniform helpers keep the distributions heavy-tailed like real
        // benchmark suites.
        let log_uniform = |r: &mut Xoshiro256pp, lo: f64, hi: f64| -> f64 {
            (r.next_range_f64(lo.ln(), hi.ln())).exp()
        };
        let startupish = r.next_bool(0.5);
        let total_work = if startupish {
            log_uniform(r, 3e8, 2e9)
        } else {
            log_uniform(r, 2e9, 1.2e10)
        };
        let threads = match r.next_below(4) {
            0 => 1,
            1 => 2,
            2 => 4,
            _ => 8,
        };
        let w = Workload {
            name: format!("synthetic-{}", self.counter),
            total_work,
            threads,
            alloc_rate: log_uniform(r, 0.05, 5.0),
            mean_object_size: r.next_range_f64(24.0, 128.0),
            humongous_fraction: if r.next_bool(0.2) {
                r.next_range_f64(0.0, 0.15)
            } else {
                0.0
            },
            nursery_survival: r.next_range_f64(0.01, 0.20),
            mid_life_fraction: r.next_range_f64(0.1, 0.6),
            live_set: log_uniform(r, 5e6, 8e8),
            hot_methods: log_uniform(r, 20.0, 5000.0) as u32,
            hotness_skew: r.next_range_f64(0.5, 1.6),
            mean_method_size: r.next_range_f64(40.0, 120.0),
            call_density: log_uniform(r, 0.002, 0.05),
            lock_density: log_uniform(r, 5e-5, 0.01),
            lock_contention: r.next_range_f64(0.0, 0.5),
            pointer_density: r.next_range_f64(0.05, 0.8),
            array_stream_fraction: r.next_range_f64(0.05, 0.95),
            fp_fraction: r.next_range_f64(0.0, 0.7),
            classes_loaded: log_uniform(r, 1500.0, 20_000.0) as u32,
        };
        debug_assert_eq!(w.validate(), Ok(()));
        w
    }

    /// Produce a batch.
    pub fn take(&mut self, n: usize) -> Vec<Workload> {
        (0..n).map(|_| self.next_workload()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_workloads_validate() {
        let mut g = SyntheticGenerator::new(1);
        for w in g.take(200) {
            assert_eq!(w.validate(), Ok(()), "{} invalid", w.name);
        }
    }

    #[test]
    fn streams_are_reproducible() {
        let a: Vec<f64> = SyntheticGenerator::new(7)
            .take(10)
            .iter()
            .map(|w| w.total_work)
            .collect();
        let b: Vec<f64> = SyntheticGenerator::new(7)
            .take(10)
            .iter()
            .map(|w| w.total_work)
            .collect();
        assert_eq!(a, b);
        let c: Vec<f64> = SyntheticGenerator::new(8)
            .take(10)
            .iter()
            .map(|w| w.total_work)
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn names_are_distinct() {
        let mut g = SyntheticGenerator::new(3);
        let ws = g.take(20);
        let mut names: Vec<&str> = ws.iter().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn mix_of_startup_and_steady_state() {
        let mut g = SyntheticGenerator::new(5);
        let ws = g.take(100);
        let startup = ws.iter().filter(|w| w.startup_sensitive()).count();
        assert!(startup > 10 && startup < 90, "startup count {startup}");
    }
}
