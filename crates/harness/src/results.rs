//! Serialisable tuning-session records.
//!
//! Experiment drivers persist one [`SessionRecord`] per tuned program so
//! tables can be regenerated without re-running the search. Two formats:
//! a simple line-oriented TSV (round-trippable, the archival format) and
//! JSON via [`jtune_util::json`] (the `jtune --json` surface).

use jtune_util::json::JsonObject;

/// One evaluated candidate within a session.
#[derive(Clone, Debug, PartialEq)]
pub struct TrialRecord {
    /// Evaluation index within the session (0 = the default config).
    pub index: u64,
    /// Virtual tuning-clock time when the evaluation finished, seconds.
    pub at_secs: f64,
    /// Median score in seconds (`None` = candidate failed).
    pub score_secs: Option<f64>,
    /// Which search technique proposed it.
    pub technique: String,
    /// Flags changed from default, rendered as command-line arguments.
    pub delta: Vec<String>,
}

/// One complete tuning session for one program.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionRecord {
    /// Program name.
    pub program: String,
    /// Executor description.
    pub executor: String,
    /// Budget in minutes.
    pub budget_mins: f64,
    /// Default-configuration score in seconds.
    pub default_secs: f64,
    /// Best score found, seconds.
    pub best_secs: f64,
    /// Command-line delta of the best configuration.
    pub best_delta: Vec<String>,
    /// Candidates evaluated.
    pub evaluations: u64,
    /// Full trial log (for convergence plots).
    pub trials: Vec<TrialRecord>,
}

impl SessionRecord {
    /// Improvement percentage as the paper reports it (speedup − 1).
    pub fn improvement_percent(&self) -> f64 {
        jtune_util::stats::improvement_percent(self.default_secs, self.best_secs)
    }

    /// Write a compact TSV representation (one line per trial plus a
    /// header line for the session).
    pub fn to_tsv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "#session\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.program,
            self.executor,
            self.budget_mins,
            self.default_secs,
            self.best_secs,
            self.evaluations,
            self.best_delta.join(" "),
        );
        for t in &self.trials {
            let _ = writeln!(
                out,
                "{}\t{}\t{}\t{}\t{}",
                t.index,
                t.at_secs,
                t.score_secs.map_or("FAIL".to_string(), |s| s.to_string()),
                t.technique,
                t.delta.join(" "),
            );
        }
        out
    }

    /// Render the session as a single JSON object (the `--json` surface).
    pub fn to_json(&self) -> String {
        let trials: Vec<String> = self
            .trials
            .iter()
            .map(|t| {
                JsonObject::new()
                    .u64("index", t.index)
                    .f64("at_secs", t.at_secs)
                    .opt_f64("score_secs", t.score_secs)
                    .str("technique", &t.technique)
                    .str_array("delta", &t.delta)
                    .finish()
            })
            .collect();
        JsonObject::new()
            .str("program", &self.program)
            .str("executor", &self.executor)
            .f64("budget_mins", self.budget_mins)
            .f64("default_secs", self.default_secs)
            .f64("best_secs", self.best_secs)
            .f64("improvement_percent", self.improvement_percent())
            .str_array("best_delta", &self.best_delta)
            .u64("evaluations", self.evaluations)
            .raw("trials", &jtune_util::json::array_of(&trials))
            .finish()
    }

    /// Parse the TSV produced by [`SessionRecord::to_tsv`].
    pub fn from_tsv(s: &str) -> Option<SessionRecord> {
        let mut lines = s.lines();
        let header = lines.next()?;
        let mut h = header.split('\t');
        if h.next()? != "#session" {
            return None;
        }
        let program = h.next()?.to_string();
        let executor = h.next()?.to_string();
        let budget_mins = h.next()?.parse().ok()?;
        let default_secs = h.next()?.parse().ok()?;
        let best_secs = h.next()?.parse().ok()?;
        let evaluations = h.next()?.parse().ok()?;
        let best_delta: Vec<String> = h.next()?.split_whitespace().map(str::to_string).collect();
        let mut trials = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut f = line.split('\t');
            let index = f.next()?.parse().ok()?;
            let at_secs = f.next()?.parse().ok()?;
            let score_raw = f.next()?;
            let score_secs = if score_raw == "FAIL" {
                None
            } else {
                Some(score_raw.parse().ok()?)
            };
            let technique = f.next()?.to_string();
            let delta = f
                .next()
                .map(|d| d.split_whitespace().map(str::to_string).collect())
                .unwrap_or_default();
            trials.push(TrialRecord {
                index,
                at_secs,
                score_secs,
                technique,
                delta,
            });
        }
        Some(SessionRecord {
            program,
            executor,
            budget_mins,
            default_secs,
            best_secs,
            best_delta,
            evaluations,
            trials,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SessionRecord {
        SessionRecord {
            program: "h2".into(),
            executor: "sim:h2".into(),
            budget_mins: 200.0,
            default_secs: 42.5,
            best_secs: 30.0,
            best_delta: vec![
                "-XX:+UseConcMarkSweepGC".into(),
                "-XX:MaxHeapSize=4g".into(),
            ],
            evaluations: 2,
            trials: vec![
                TrialRecord {
                    index: 0,
                    at_secs: 130.0,
                    score_secs: Some(42.5),
                    technique: "default".into(),
                    delta: vec![],
                },
                TrialRecord {
                    index: 1,
                    at_secs: 260.0,
                    score_secs: None,
                    technique: "random".into(),
                    delta: vec!["-XX:MaxHeapSize=16m".into()],
                },
            ],
        }
    }

    #[test]
    fn improvement_matches_paper_formula() {
        let s = sample();
        assert!((s.improvement_percent() - (42.5 / 30.0 - 1.0) * 100.0).abs() < 1e-9);
    }

    #[test]
    fn tsv_round_trips() {
        let s = sample();
        let tsv = s.to_tsv();
        let back = SessionRecord::from_tsv(&tsv).expect("parse");
        assert_eq!(back, s);
    }

    #[test]
    fn malformed_tsv_rejected() {
        assert!(SessionRecord::from_tsv("").is_none());
        assert!(SessionRecord::from_tsv("#nonsense\tx").is_none());
        assert!(SessionRecord::from_tsv("#session\tonly-two-fields").is_none());
    }
}
