//! Serialisable tuning-session records.
//!
//! Experiment drivers persist one [`SessionRecord`] per tuned program so
//! tables can be regenerated without re-running the search. Two formats:
//! a simple line-oriented TSV (round-trippable, the archival format) and
//! JSON via [`jtune_util::json`] (the `jtune --json` surface).

use jtune_util::json::JsonObject;

/// One evaluated candidate within a session.
#[derive(Clone, Debug, PartialEq)]
pub struct TrialRecord {
    /// Evaluation index within the session (0 = the default config).
    pub index: u64,
    /// Virtual tuning-clock time when the evaluation finished, seconds.
    pub at_secs: f64,
    /// Median score in seconds (`None` = candidate failed).
    pub score_secs: Option<f64>,
    /// Which search technique proposed it.
    pub technique: String,
    /// Flags changed from default, rendered as command-line arguments.
    pub delta: Vec<String>,
}

/// One complete tuning session for one program.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionRecord {
    /// Program name.
    pub program: String,
    /// Executor description.
    pub executor: String,
    /// Budget in minutes.
    pub budget_mins: f64,
    /// Default-configuration score in seconds.
    pub default_secs: f64,
    /// Best score found, seconds.
    pub best_secs: f64,
    /// Command-line delta of the best configuration.
    pub best_delta: Vec<String>,
    /// Candidates evaluated (trials charged, including cache hits).
    pub evaluations: u64,
    /// Distinct configurations actually measured by the executor. Equals
    /// `evaluations` for a legacy session; with the evaluation pipeline's
    /// cache enabled, hits and duplicates keep `evaluations` growing
    /// without measuring anything new.
    pub distinct: u64,
    /// Trials served from the trial cache.
    pub cache_hits: u64,
    /// Trials abandoned early by racing.
    pub aborted: u64,
    /// Transient-failure repeats recovered by the retry policy.
    pub retried: u64,
    /// Configurations quarantined for failing deterministically.
    pub quarantined: u64,
    /// Within-batch duplicate proposals suppressed (served once).
    pub suppressed: u64,
    /// Estimated budget the cache, dedup and racing avoided spending,
    /// seconds.
    pub saved_secs: f64,
    /// Over-proposed candidates the surrogate screened out before
    /// measurement (0 with the model off).
    pub screened: u64,
    /// Surrogate refits performed during the session.
    pub model_fits: u64,
    /// Full trial log (for convergence plots).
    pub trials: Vec<TrialRecord>,
}

impl SessionRecord {
    /// Improvement percentage as the paper reports it (speedup − 1).
    pub fn improvement_percent(&self) -> f64 {
        jtune_util::stats::improvement_percent(self.default_secs, self.best_secs)
    }

    /// Write a compact TSV representation (one line per trial plus a
    /// header line for the session).
    pub fn to_tsv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "#session\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.program,
            self.executor,
            self.budget_mins,
            self.default_secs,
            self.best_secs,
            self.evaluations,
            self.distinct,
            self.cache_hits,
            self.aborted,
            self.retried,
            self.quarantined,
            self.suppressed,
            self.saved_secs,
            self.screened,
            self.model_fits,
            self.best_delta.join(" "),
        );
        for t in &self.trials {
            let _ = writeln!(
                out,
                "{}\t{}\t{}\t{}\t{}",
                t.index,
                t.at_secs,
                t.score_secs.map_or("FAIL".to_string(), |s| s.to_string()),
                t.technique,
                t.delta.join(" "),
            );
        }
        out
    }

    /// Per-technique usage summary derived from the trial log: for each
    /// technique (in name order) the trials it proposed, how many
    /// failed, how many improved on the best-so-far, and the total
    /// best-score improvement attributed to it, seconds.
    pub fn technique_usage(&self) -> Vec<(String, u64, u64, u64, f64)> {
        use std::collections::BTreeMap;
        let mut by_name: BTreeMap<&str, (u64, u64, u64, f64)> = BTreeMap::new();
        let mut best: Option<f64> = None;
        for t in &self.trials {
            let e = by_name.entry(&t.technique).or_default();
            e.0 += 1;
            match t.score_secs {
                None => e.1 += 1,
                Some(s) => match best {
                    Some(b) if s >= b => {}
                    prev => {
                        if let Some(b) = prev {
                            e.2 += 1;
                            e.3 += b - s;
                        }
                        best = Some(s);
                    }
                },
            }
        }
        by_name
            .into_iter()
            .map(|(name, (trials, failures, wins, reward))| {
                (name.to_string(), trials, failures, wins, reward)
            })
            .collect()
    }

    /// Render the session as a single JSON object (the `--json` surface).
    pub fn to_json(&self) -> String {
        let techniques: Vec<String> = self
            .technique_usage()
            .iter()
            .map(|(name, trials, failures, wins, reward)| {
                JsonObject::new()
                    .str("name", name)
                    .u64("trials", *trials)
                    .u64("failures", *failures)
                    .u64("wins", *wins)
                    .f64("reward_secs", *reward)
                    .finish()
            })
            .collect();
        let trials: Vec<String> = self
            .trials
            .iter()
            .map(|t| {
                JsonObject::new()
                    .u64("index", t.index)
                    .f64("at_secs", t.at_secs)
                    .opt_f64("score_secs", t.score_secs)
                    .str("technique", &t.technique)
                    .str_array("delta", &t.delta)
                    .finish()
            })
            .collect();
        JsonObject::new()
            .str("program", &self.program)
            .str("executor", &self.executor)
            .f64("budget_mins", self.budget_mins)
            .f64("default_secs", self.default_secs)
            .f64("best_secs", self.best_secs)
            .f64("improvement_percent", self.improvement_percent())
            .str_array("best_delta", &self.best_delta)
            .u64("evaluations", self.evaluations)
            .u64("distinct", self.distinct)
            .u64("cache_hits", self.cache_hits)
            .u64("aborted", self.aborted)
            .u64("retried", self.retried)
            .u64("quarantined", self.quarantined)
            .u64("suppressed", self.suppressed)
            .f64("saved_secs", self.saved_secs)
            .u64("screened", self.screened)
            .u64("model_fits", self.model_fits)
            .raw("techniques", &jtune_util::json::array_of(&techniques))
            .raw("trials", &jtune_util::json::array_of(&trials))
            .finish()
    }

    /// Parse the TSV produced by [`SessionRecord::to_tsv`].
    pub fn from_tsv(s: &str) -> Option<SessionRecord> {
        let mut lines = s.lines();
        let header = lines.next()?;
        let mut h = header.split('\t');
        if h.next()? != "#session" {
            return None;
        }
        let program = h.next()?.to_string();
        let executor = h.next()?.to_string();
        let budget_mins = h.next()?.parse().ok()?;
        let default_secs = h.next()?.parse().ok()?;
        let best_secs = h.next()?.parse().ok()?;
        let evaluations: u64 = h.next()?.parse().ok()?;
        // Legacy headers (pre-pipeline) go straight from `evaluations`
        // to the delta field; pipeline-era ones carry three counters in
        // between, fault-tolerant ones add retried + quarantined, and
        // model-era ones add suppressed, saved budget and screening.
        let rest: Vec<&str> = h.collect();
        #[allow(clippy::type_complexity)]
        let (
            distinct,
            cache_hits,
            aborted,
            retried,
            quarantined,
            suppressed,
            saved_secs,
            screened,
            model_fits,
            delta_field,
        ): (u64, u64, u64, u64, u64, u64, f64, u64, u64, &str) = match rest.as_slice() {
            [d, c, a, r, q, sup, sav, scr, mf, delta] => (
                d.parse().ok()?,
                c.parse().ok()?,
                a.parse().ok()?,
                r.parse().ok()?,
                q.parse().ok()?,
                sup.parse().ok()?,
                sav.parse().ok()?,
                scr.parse().ok()?,
                mf.parse().ok()?,
                *delta,
            ),
            [d, c, a, r, q, delta] => (
                d.parse().ok()?,
                c.parse().ok()?,
                a.parse().ok()?,
                r.parse().ok()?,
                q.parse().ok()?,
                0,
                0.0,
                0,
                0,
                *delta,
            ),
            [d, c, a, delta] => (
                d.parse().ok()?,
                c.parse().ok()?,
                a.parse().ok()?,
                0,
                0,
                0,
                0.0,
                0,
                0,
                *delta,
            ),
            [delta] => (evaluations, 0, 0, 0, 0, 0, 0.0, 0, 0, *delta),
            _ => return None,
        };
        let best_delta: Vec<String> = delta_field.split_whitespace().map(str::to_string).collect();
        let mut trials = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut f = line.split('\t');
            let index = f.next()?.parse().ok()?;
            let at_secs = f.next()?.parse().ok()?;
            let score_raw = f.next()?;
            let score_secs = if score_raw == "FAIL" {
                None
            } else {
                Some(score_raw.parse().ok()?)
            };
            let technique = f.next()?.to_string();
            let delta = f
                .next()
                .map(|d| d.split_whitespace().map(str::to_string).collect())
                .unwrap_or_default();
            trials.push(TrialRecord {
                index,
                at_secs,
                score_secs,
                technique,
                delta,
            });
        }
        Some(SessionRecord {
            program,
            executor,
            budget_mins,
            default_secs,
            best_secs,
            best_delta,
            evaluations,
            distinct,
            cache_hits,
            aborted,
            retried,
            quarantined,
            suppressed,
            saved_secs,
            screened,
            model_fits,
            trials,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SessionRecord {
        SessionRecord {
            program: "h2".into(),
            executor: "sim:h2".into(),
            budget_mins: 200.0,
            default_secs: 42.5,
            best_secs: 30.0,
            best_delta: vec![
                "-XX:+UseConcMarkSweepGC".into(),
                "-XX:MaxHeapSize=4g".into(),
            ],
            evaluations: 2,
            distinct: 2,
            cache_hits: 0,
            aborted: 0,
            retried: 0,
            quarantined: 0,
            suppressed: 0,
            saved_secs: 0.0,
            screened: 0,
            model_fits: 0,
            trials: vec![
                TrialRecord {
                    index: 0,
                    at_secs: 130.0,
                    score_secs: Some(42.5),
                    technique: "default".into(),
                    delta: vec![],
                },
                TrialRecord {
                    index: 1,
                    at_secs: 260.0,
                    score_secs: None,
                    technique: "random".into(),
                    delta: vec!["-XX:MaxHeapSize=16m".into()],
                },
            ],
        }
    }

    #[test]
    fn improvement_matches_paper_formula() {
        let s = sample();
        assert!((s.improvement_percent() - (42.5 / 30.0 - 1.0) * 100.0).abs() < 1e-9);
    }

    #[test]
    fn technique_usage_groups_wins_and_rewards() {
        let mut s = sample();
        s.trials.push(TrialRecord {
            index: 2,
            at_secs: 300.0,
            score_secs: Some(30.0),
            technique: "random".into(),
            delta: vec!["-XX:+UseG1GC".into()],
        });
        let usage = s.technique_usage();
        // Name order: default, random.
        assert_eq!(usage[0].0, "default");
        assert_eq!(usage[0].1, 1);
        assert_eq!(usage[1].0, "random");
        assert_eq!(usage[1].1, 2);
        assert_eq!(usage[1].2, 1, "one failed trial");
        assert_eq!(usage[1].3, 1, "one win");
        assert!((usage[1].4 - 12.5).abs() < 1e-12, "reward 42.5 - 30");
        let json = s.to_json();
        assert!(json.contains("\"techniques\":[{\"name\":\"default\""));
        assert!(json.contains("\"reward_secs\":12.5"));
    }

    #[test]
    fn tsv_round_trips() {
        let s = sample();
        let tsv = s.to_tsv();
        let back = SessionRecord::from_tsv(&tsv).expect("parse");
        assert_eq!(back, s);
    }

    #[test]
    fn legacy_tsv_without_pipeline_counters_parses() {
        let legacy = "#session\th2\tsim:h2\t200\t42.5\t30\t2\t-XX:+UseConcMarkSweepGC\n\
                      0\t130\t42.5\tdefault\t\n";
        let s = SessionRecord::from_tsv(legacy).expect("legacy parse");
        assert_eq!(s.evaluations, 2);
        assert_eq!(s.distinct, 2, "legacy sessions measured every trial");
        assert_eq!(s.cache_hits, 0);
        assert_eq!(s.aborted, 0);
        assert_eq!(s.best_delta, vec!["-XX:+UseConcMarkSweepGC".to_string()]);
    }

    #[test]
    fn pipeline_counters_round_trip() {
        let mut s = sample();
        s.distinct = 1;
        s.cache_hits = 1;
        s.aborted = 0;
        s.retried = 3;
        s.quarantined = 1;
        s.suppressed = 2;
        s.saved_secs = 12.5;
        s.screened = 9;
        s.model_fits = 4;
        let back = SessionRecord::from_tsv(&s.to_tsv()).expect("parse");
        assert_eq!(back, s);
    }

    #[test]
    fn fault_era_tsv_without_model_counters_parses() {
        let tsv = "#session\th2\tsim:h2\t200\t42.5\t30\t4\t3\t1\t0\t2\t1\t-XX:MaxHeapSize=4g\n";
        let s = SessionRecord::from_tsv(tsv).expect("fault-era parse");
        assert_eq!(s.retried, 2);
        assert_eq!(s.quarantined, 1);
        assert_eq!(s.suppressed, 0, "pre-model sessions carry no screening");
        assert_eq!(s.screened, 0);
        assert_eq!(s.model_fits, 0);
    }

    #[test]
    fn pipeline_era_tsv_without_fault_counters_parses() {
        let tsv = "#session\th2\tsim:h2\t200\t42.5\t30\t4\t3\t1\t0\t-XX:MaxHeapSize=4g\n";
        let s = SessionRecord::from_tsv(tsv).expect("pipeline-era parse");
        assert_eq!(s.distinct, 3);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.retried, 0, "pre-fault-tolerance sessions never retried");
        assert_eq!(s.quarantined, 0);
    }

    #[test]
    fn malformed_tsv_rejected() {
        assert!(SessionRecord::from_tsv("").is_none());
        assert!(SessionRecord::from_tsv("#nonsense\tx").is_none());
        assert!(SessionRecord::from_tsv("#session\tonly-two-fields").is_none());
    }
}
