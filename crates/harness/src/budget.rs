//! Tuning-time budget accounting.
//!
//! The paper tunes each program within a wall-clock budget ("a maximum
//! tuning time of 200 minutes"). [`Budget`] is that clock: every candidate
//! evaluation charges its cost (run times + start-up overhead), and the
//! tuner stops when the budget is spent. Thread-safe so the parallel
//! evaluation pool can charge concurrently; charging is atomic
//! (compare-and-swap) so the total never overshoots by more than the final
//! in-flight evaluation, matching how a real tuner's last run may straddle
//! the deadline.
//!
//! Refund economics: the evaluation pipeline's savings (cache hits,
//! duplicate suppression, racing aborts) need no explicit refund API.
//! Charges record what was *actually spent* — a cache hit charges its
//! re-charge share, a duplicate charges zero, a raced-out candidate
//! charges only the repeats it ran — so unspent repeats simply never
//! reach the clock, and summing a trace's charges still reproduces the
//! session's spend exactly.

use std::sync::atomic::{AtomicU64, Ordering};

use jtune_util::SimDuration;

/// A spendable amount of virtual tuning time.
#[derive(Debug)]
pub struct Budget {
    total_nanos: u64,
    spent_nanos: AtomicU64,
}

/// What one [`Budget::charge_observed`] call did.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChargeOutcome {
    /// The charge started within budget (the evaluation counts).
    pub started_within: bool,
    /// This exact charge crossed the limit: true at most once per
    /// session, on the straddling final charge.
    pub crossed_limit: bool,
    /// Cumulative spend after the charge.
    pub spent_after: SimDuration,
}

impl Budget {
    /// A budget of `total` tuning time.
    pub fn new(total: SimDuration) -> Budget {
        Budget {
            total_nanos: total.as_nanos(),
            spent_nanos: AtomicU64::new(0),
        }
    }

    /// The paper's 200-minute budget.
    pub fn paper_default() -> Budget {
        Budget::new(SimDuration::from_mins(200))
    }

    /// Total allocation.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_nanos(self.total_nanos)
    }

    /// Time spent so far.
    pub fn spent(&self) -> SimDuration {
        SimDuration::from_nanos(self.spent_nanos.load(Ordering::Relaxed))
    }

    /// Time remaining (zero once exhausted).
    pub fn remaining(&self) -> SimDuration {
        self.total().saturating_sub(self.spent())
    }

    /// Is any budget left to start new work?
    pub fn has_remaining(&self) -> bool {
        self.spent_nanos.load(Ordering::Relaxed) < self.total_nanos
    }

    /// Charge `cost`. Returns `true` if the charge *started* within budget
    /// (the final evaluation may straddle the deadline, like a real run).
    pub fn charge(&self, cost: SimDuration) -> bool {
        self.charge_observed(cost).started_within
    }

    /// [`Budget::charge`] with full accounting detail, the telemetry
    /// hook: the tuner emits a `BudgetExhausted` event on the single
    /// charge whose [`ChargeOutcome::crossed_limit`] is `true`.
    pub fn charge_observed(&self, cost: SimDuration) -> ChargeOutcome {
        let before = self
            .spent_nanos
            .fetch_add(cost.as_nanos(), Ordering::Relaxed);
        let after = before.saturating_add(cost.as_nanos());
        ChargeOutcome {
            started_within: before < self.total_nanos,
            crossed_limit: before < self.total_nanos
                && after >= self.total_nanos
                && self.total_nanos > 0,
            spent_after: SimDuration::from_nanos(after),
        }
    }

    /// Fraction spent, ≥ 0 (can exceed 1 after the straddling final run).
    pub fn fraction_spent(&self) -> f64 {
        if self.total_nanos == 0 {
            return 1.0;
        }
        self.spent().as_nanos() as f64 / self.total_nanos as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let b = Budget::new(SimDuration::from_secs(10));
        assert!(b.charge(SimDuration::from_secs(4)));
        assert!(b.charge(SimDuration::from_secs(4)));
        assert_eq!(b.spent(), SimDuration::from_secs(8));
        assert_eq!(b.remaining(), SimDuration::from_secs(2));
        assert!(b.has_remaining());
        // Final charge straddles the deadline: allowed, but exhausts.
        assert!(b.charge(SimDuration::from_secs(4)));
        assert!(!b.has_remaining());
        assert!(!b.charge(SimDuration::from_secs(1)));
        assert_eq!(b.remaining(), SimDuration::ZERO);
    }

    #[test]
    fn fraction_spent_tracks() {
        let b = Budget::new(SimDuration::from_secs(10));
        b.charge(SimDuration::from_secs(5));
        assert!((b.fraction_spent() - 0.5).abs() < 1e-9);
        let zero = Budget::new(SimDuration::ZERO);
        assert_eq!(zero.fraction_spent(), 1.0);
        assert!(!zero.has_remaining());
    }

    #[test]
    fn concurrent_charging_is_consistent() {
        let b = Budget::new(SimDuration::from_secs(1000));
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        b.charge(SimDuration::from_millis(1));
                    }
                });
            }
        });
        assert_eq!(b.spent(), SimDuration::from_secs(8));
    }

    #[test]
    fn paper_default_is_200_minutes() {
        assert_eq!(Budget::paper_default().total(), SimDuration::from_mins(200));
    }
}
