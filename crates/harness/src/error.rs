//! Typed trial failures.
//!
//! The executor layer used to signal failure as a bare `Option<String>`,
//! which forced everything downstream (techniques, traces, reports) to
//! treat "the JVM crashed", "the heap was too small" and "these flags
//! conflict" as the same event. [`TrialError`] keeps the human-readable
//! message but adds a stable failure *kind*, so search techniques and
//! trace consumers can distinguish a configuration that can never start
//! (flag conflict — no point proposing neighbours) from one that ran out
//! of memory (a bigger heap may fix it) from an opaque crash.

/// Why a trial run failed.
///
/// Every variant carries the human-readable message the executor
/// observed; [`TrialError::kind`] gives the stable machine-readable tag
/// serialised into traces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrialError {
    /// The process died for an unclassified reason (non-zero exit,
    /// launch failure, simulator-internal fault).
    Crash(String),
    /// The configured heap could not hold the workload's live set.
    Oom(String),
    /// The run exceeded the executor's time limit.
    Timeout(String),
    /// The flag combination is invalid — the VM refused to start.
    FlagConflict(String),
}

impl TrialError {
    /// Stable machine-readable tag (the `error_kind` trace field).
    pub fn kind(&self) -> &'static str {
        match self {
            TrialError::Crash(_) => "crash",
            TrialError::Oom(_) => "oom",
            TrialError::Timeout(_) => "timeout",
            TrialError::FlagConflict(_) => "flag-conflict",
        }
    }

    /// The human-readable message, exactly as the executor reported it.
    pub fn message(&self) -> &str {
        match self {
            TrialError::Crash(m)
            | TrialError::Oom(m)
            | TrialError::Timeout(m)
            | TrialError::FlagConflict(m) => m,
        }
    }

    /// Classify a raw failure message by content. Executors that observe
    /// structured failures (the simulator) construct variants directly;
    /// this heuristic covers executors that only see opaque text (a real
    /// `java` process's stderr or exit status).
    pub fn classify(message: impl Into<String>) -> TrialError {
        let message = message.into();
        let lower = message.to_lowercase();
        if lower.contains("outofmemory") || lower.contains("out of memory") {
            TrialError::Oom(message)
        } else if lower.contains("invalid configuration")
            || lower.contains("conflict")
            || lower.contains("unrecognized")
            || lower.contains("could not create the java virtual machine")
        {
            TrialError::FlagConflict(message)
        } else if lower.contains("timed out") || lower.contains("timeout") {
            TrialError::Timeout(message)
        } else {
            TrialError::Crash(message)
        }
    }
}

impl std::fmt::Display for TrialError {
    /// Renders the message only (no kind prefix), so log lines and JSON
    /// traces carry the same bytes the executor produced.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message())
    }
}

impl std::error::Error for TrialError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_recognises_common_failures() {
        assert_eq!(
            TrialError::classify("java.lang.OutOfMemoryError: Java heap space").kind(),
            "oom"
        );
        assert_eq!(
            TrialError::classify("invalid configuration: zero heap").kind(),
            "flag-conflict"
        );
        assert_eq!(
            TrialError::classify("Unrecognized VM option 'UseFoo'").kind(),
            "flag-conflict"
        );
        assert_eq!(
            TrialError::classify("benchmark timed out after 600 s").kind(),
            "timeout"
        );
        assert_eq!(TrialError::classify("java exited with 134").kind(), "crash");
    }

    #[test]
    fn display_preserves_the_raw_message() {
        let e = TrialError::classify("java.lang.OutOfMemoryError: Java heap space");
        assert_eq!(e.to_string(), "java.lang.OutOfMemoryError: Java heap space");
        assert_eq!(e.message(), e.to_string());
    }
}
