//! Typed trial failures and the failure policy built on them.
//!
//! The executor layer used to signal failure as a bare `Option<String>`,
//! which forced everything downstream (techniques, traces, reports) to
//! treat "the JVM crashed", "the heap was too small" and "these flags
//! conflict" as the same event. [`TrialError`] keeps the human-readable
//! message but adds a stable failure *kind*, so search techniques and
//! trace consumers can distinguish a configuration that can never start
//! (flag conflict — no point proposing neighbours) from one that ran out
//! of memory (a bigger heap may fix it) from an opaque crash.
//!
//! On top of the kind, [`TrialError::is_transient`] splits failures into
//! *transient* (an external cause — a hung launch killed by the watchdog,
//! a signal from the host, an injected fault — that a repeat run may not
//! hit again) and *deterministic* (the configuration itself is bad; no
//! repeat will fix it). The retry policy only re-runs transient failures,
//! the trial cache only memoizes deterministic ones, and the
//! [`QuarantinePolicy`] circuit-breaker counts only deterministic
//! streaks.

/// Why a trial run failed.
///
/// Every variant carries the human-readable message the executor
/// observed; [`TrialError::kind`] gives the stable machine-readable tag
/// serialised into traces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrialError {
    /// The process died for an unclassified reason (non-zero exit,
    /// launch failure, simulator-internal fault).
    Crash(String),
    /// The configured heap could not hold the workload's live set.
    Oom(String),
    /// The run exceeded the executor's time limit.
    Timeout(String),
    /// The flag combination is invalid — the VM refused to start.
    FlagConflict(String),
}

impl TrialError {
    /// Stable machine-readable tag (the `error_kind` trace field).
    pub fn kind(&self) -> &'static str {
        match self {
            TrialError::Crash(_) => "crash",
            TrialError::Oom(_) => "oom",
            TrialError::Timeout(_) => "timeout",
            TrialError::FlagConflict(_) => "flag-conflict",
        }
    }

    /// The human-readable message, exactly as the executor reported it.
    pub fn message(&self) -> &str {
        match self {
            TrialError::Crash(m)
            | TrialError::Oom(m)
            | TrialError::Timeout(m)
            | TrialError::FlagConflict(m) => m,
        }
    }

    /// Classify a raw failure message by content. Executors that observe
    /// structured failures (the simulator) construct variants directly;
    /// this heuristic covers executors that only see opaque text (a real
    /// `java` process's stderr or exit status).
    pub fn classify(message: impl Into<String>) -> TrialError {
        let message = message.into();
        let lower = message.to_lowercase();
        if lower.contains("outofmemory") || lower.contains("out of memory") {
            TrialError::Oom(message)
        } else if lower.contains("invalid configuration")
            || lower.contains("conflict")
            || lower.contains("unrecognized")
            || lower.contains("could not create the java virtual machine")
        {
            TrialError::FlagConflict(message)
        } else if lower.contains("timed out") || lower.contains("timeout") {
            TrialError::Timeout(message)
        } else {
            TrialError::Crash(message)
        }
    }

    /// Could a repeat run of the same configuration plausibly succeed?
    ///
    /// Transient failures have an *external* cause: a hang killed by the
    /// watchdog (host wedged, not the flags), a launch that failed to
    /// spawn (resource exhaustion), a process killed by a signal (OOM
    /// killer, operator), or an injected fault. Deterministic failures —
    /// a non-zero exit status, a heap that cannot hold the live set, a
    /// flag conflict — are properties of the configuration and will
    /// recur on every run.
    ///
    /// This is a content heuristic over the message (like
    /// [`classify`](TrialError::classify)) rather than extra enum
    /// variants, so the `error_kind` tags serialised into traces stay
    /// stable.
    pub fn is_transient(&self) -> bool {
        match self {
            TrialError::Timeout(_) => true,
            TrialError::Crash(m) => {
                let lower = m.to_lowercase();
                lower.contains("signal")
                    || lower.contains("failed to launch")
                    || lower.contains("transient")
            }
            TrialError::Oom(_) | TrialError::FlagConflict(_) => false,
        }
    }
}

/// Crash-streak circuit-breaker: after `streak` deterministic-failure
/// runs of one canonical fingerprint, the tuner stops re-proposing it
/// (the cache-reuse path skips it and falls back to a random probe).
///
/// Transient failures never count toward the streak, and a successful
/// run resets it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuarantinePolicy {
    /// Deterministic-failure runs before the fingerprint is quarantined.
    pub streak: u32,
}

impl Default for QuarantinePolicy {
    /// Three strikes: one failed evaluation under `fail_fast` contributes
    /// one run, so the default tolerates a couple of re-proposals before
    /// the breaker opens.
    fn default() -> Self {
        QuarantinePolicy { streak: 3 }
    }
}

impl std::fmt::Display for TrialError {
    /// Renders the message only (no kind prefix), so log lines and JSON
    /// traces carry the same bytes the executor produced.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message())
    }
}

impl std::error::Error for TrialError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_recognises_common_failures() {
        assert_eq!(
            TrialError::classify("java.lang.OutOfMemoryError: Java heap space").kind(),
            "oom"
        );
        assert_eq!(
            TrialError::classify("invalid configuration: zero heap").kind(),
            "flag-conflict"
        );
        assert_eq!(
            TrialError::classify("Unrecognized VM option 'UseFoo'").kind(),
            "flag-conflict"
        );
        assert_eq!(
            TrialError::classify("benchmark timed out after 600 s").kind(),
            "timeout"
        );
        assert_eq!(TrialError::classify("java exited with 134").kind(), "crash");
    }

    #[test]
    fn display_preserves_the_raw_message() {
        let e = TrialError::classify("java.lang.OutOfMemoryError: Java heap space");
        assert_eq!(e.to_string(), "java.lang.OutOfMemoryError: Java heap space");
        assert_eq!(e.message(), e.to_string());
    }

    #[test]
    fn classify_maps_process_executor_messages() {
        // The exact message shapes ProcessExecutor produces.
        assert_eq!(
            TrialError::classify("java exited with exit status: 1").kind(),
            "crash"
        );
        assert_eq!(
            TrialError::classify("java exited with signal: 9 (SIGKILL)").kind(),
            "crash"
        );
        assert_eq!(
            TrialError::classify("failed to launch java: No such file or directory").kind(),
            "crash"
        );
        assert_eq!(
            TrialError::classify("run timed out after 120.0s (killed by watchdog)").kind(),
            "timeout"
        );
        assert_eq!(
            TrialError::classify("Error: Could not create the Java Virtual Machine.").kind(),
            "flag-conflict"
        );
    }

    #[test]
    fn transient_vs_deterministic_classification() {
        // Transient: external causes a retry may dodge.
        assert!(TrialError::Timeout("run timed out after 120.0s".into()).is_transient());
        assert!(TrialError::classify("java exited with signal: 9 (SIGKILL)").is_transient());
        assert!(
            TrialError::classify("failed to launch java: Resource temporarily unavailable")
                .is_transient()
        );
        assert!(
            TrialError::Crash("injected transient fault: java killed by signal 9".into())
                .is_transient()
        );
        // Deterministic: properties of the configuration.
        assert!(!TrialError::classify("java exited with exit status: 134").is_transient());
        assert!(!TrialError::Oom("java.lang.OutOfMemoryError".into()).is_transient());
        assert!(
            !TrialError::FlagConflict("conflict: UseG1GC with UseParallelGC".into()).is_transient()
        );
    }

    #[test]
    fn quarantine_default_is_three_strikes() {
        assert_eq!(QuarantinePolicy::default().streak, 3);
    }
}
