//! Deterministic fault injection.
//!
//! Real testbeds misbehave: JVM launches hang, processes die to signals,
//! a co-tenant poisons a measurement. None of that is reproducible on
//! demand, which makes robustness code untestable — so this module makes
//! faults *injectable and seeded*. A [`FaultPlan`] decides, as a pure
//! function of `(plan seed, config fingerprint, run seed)`, whether a
//! given run suffers a transient crash, a hang (surfaced as a watchdog
//! timeout), or a measurement-noise spike; [`FaultyExecutor`] wraps any
//! [`Executor`] and applies those decisions. The same plan over the same
//! session replays bit-identically at any worker count, and because the
//! retry policy re-runs a failed attempt under a *derived* seed, a
//! retried run rolls a fresh fault decision — exactly the behaviour that
//! makes retrying transient failures worthwhile.

use jtune_flags::{JvmConfig, Registry};
use jtune_jvmsim::NoiseModel;
use jtune_util::{Rng, SimDuration, SplitMix64};

use crate::error::TrialError;
use crate::executor::{Executor, Measurement};

/// The fault a plan assigns to one run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// Run normally.
    None,
    /// The process dies to a signal partway through the run; the budget
    /// is charged for the fraction completed.
    Crash {
        /// Fraction of the real run time burned before the kill.
        at_fraction: f64,
    },
    /// The process hangs; the watchdog kills it after the plan's
    /// deadline, which is charged in full.
    Hang,
    /// The run completes but its measurement is poisoned by host
    /// interference (a large multiplicative spike).
    NoiseSpike,
}

/// Seeded schedule of injected faults.
///
/// Rates are independent probabilities partitioning one uniform draw per
/// run; they must sum to ≤ 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault stream (independent of the measurement noise).
    pub seed: u64,
    /// Probability a run crashes transiently.
    pub crash_rate: f64,
    /// Probability a run hangs until the watchdog fires.
    pub hang_rate: f64,
    /// Probability a run's measurement is spiked.
    pub noise_rate: f64,
    /// Minimum spike multiplier (see [`NoiseModel::spike_factor`]).
    pub noise_factor: f64,
    /// Virtual time a hung run burns before the watchdog kills it.
    pub hang_time: SimDuration,
}

impl FaultPlan {
    /// A plan injecting only *transient* faults at a total rate of
    /// `rate`, split 60% crashes / 20% hangs / 20% noise spikes — the
    /// mix used by the `e9_faults` experiment.
    pub fn transient(rate: f64, seed: u64) -> FaultPlan {
        let rate = rate.clamp(0.0, 1.0);
        FaultPlan {
            seed,
            crash_rate: rate * 0.6,
            hang_rate: rate * 0.2,
            noise_rate: rate * 0.2,
            noise_factor: 3.0,
            hang_time: SimDuration::from_secs(120),
        }
    }

    /// Does this plan ever inject anything?
    pub fn is_active(&self) -> bool {
        self.crash_rate + self.hang_rate + self.noise_rate > 0.0
    }

    /// The fault assigned to one run. Pure function of the arguments.
    pub fn roll(&self, fingerprint: u64, run_seed: u64) -> Fault {
        let mut rng = SplitMix64::new(
            self.seed ^ fingerprint.rotate_left(32) ^ run_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let u = rng.next_f64();
        if u < self.crash_rate {
            Fault::Crash {
                at_fraction: 0.1 + 0.8 * rng.next_f64(),
            }
        } else if u < self.crash_rate + self.hang_rate {
            Fault::Hang
        } else if u < self.crash_rate + self.hang_rate + self.noise_rate {
            Fault::NoiseSpike
        } else {
            Fault::None
        }
    }
}

/// [`Executor`] wrapper that applies a [`FaultPlan`] to every run.
///
/// Injected crashes and hangs carry messages that
/// [`TrialError::is_transient`] recognises as transient, so the retry /
/// quarantine policy exercises its intended paths.
#[derive(Clone, Debug)]
pub struct FaultyExecutor<E> {
    inner: E,
    plan: FaultPlan,
}

impl<E: Executor> FaultyExecutor<E> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: E, plan: FaultPlan) -> FaultyExecutor<E> {
        FaultyExecutor { inner, plan }
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped executor.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: Executor> Executor for FaultyExecutor<E> {
    fn measure(&self, config: &JvmConfig, seed: u64) -> Measurement {
        match self.plan.roll(config.fingerprint(), seed) {
            Fault::None => self.inner.measure(config, seed),
            Fault::Crash { at_fraction } => {
                // The run dies partway: charge the fraction completed.
                let m = self.inner.measure(config, seed);
                Measurement {
                    time: m.time.mul_f64(at_fraction),
                    pause_p99: None,
                    counters: None,
                    error: Some(TrialError::Crash(
                        "injected transient fault: java killed by signal 9".to_string(),
                    )),
                }
            }
            Fault::Hang => Measurement {
                time: self.plan.hang_time,
                pause_p99: None,
                counters: None,
                error: Some(TrialError::Timeout(format!(
                    "injected hang: run timed out after {} (killed by watchdog)",
                    self.plan.hang_time
                ))),
            },
            Fault::NoiseSpike => {
                let mut m = self.inner.measure(config, seed);
                if m.error.is_none() {
                    let factor = NoiseModel::spike_factor(
                        self.plan.seed ^ config.fingerprint() ^ seed,
                        self.plan.noise_factor,
                    );
                    m.time = m.time.mul_f64(factor);
                }
                m
            }
        }
    }

    fn registry(&self) -> &Registry {
        self.inner.registry()
    }

    fn fixed_overhead(&self) -> SimDuration {
        self.inner.fixed_overhead()
    }

    /// Embeds the plan so a resumed session's journal-header check
    /// catches a changed fault schedule.
    fn describe(&self) -> String {
        format!(
            "faulty[seed={},crash={},hang={},noise={}x{}]:{}",
            self.plan.seed,
            self.plan.crash_rate,
            self.plan.hang_rate,
            self.plan.noise_rate,
            self.plan.noise_factor,
            self.inner.describe()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SimExecutor;
    use crate::protocol::{Protocol, RetryPolicy};
    use jtune_jvmsim::Workload;

    fn executor(rate: f64) -> FaultyExecutor<SimExecutor> {
        let mut w = Workload::baseline("fault-test");
        w.total_work = 3e8;
        FaultyExecutor::new(SimExecutor::new(w), FaultPlan::transient(rate, 0xFA17))
    }

    #[test]
    fn faults_are_deterministic_in_the_plan_seed() {
        let ex = executor(0.3);
        let c = JvmConfig::default_for(ex.registry());
        for seed in 0..64 {
            let a = ex.measure(&c, seed);
            let b = ex.measure(&c, seed);
            assert_eq!(a.time, b.time);
            assert_eq!(a.error, b.error);
        }
    }

    #[test]
    fn fault_rate_matches_the_plan_roughly() {
        let ex = executor(0.2);
        let c = JvmConfig::default_for(ex.registry());
        let faulted = (0..1000)
            .filter(|&seed| ex.plan().roll(c.fingerprint(), seed) != Fault::None)
            .count();
        assert!((100..320).contains(&faulted), "rate off: {faulted}/1000");
    }

    #[test]
    fn injected_faults_are_transient_and_typed() {
        let ex = executor(0.5);
        let c = JvmConfig::default_for(ex.registry());
        let mut kinds = std::collections::BTreeSet::new();
        for seed in 0..400 {
            if let Some(err) = ex.measure(&c, seed).error {
                assert!(err.is_transient(), "{}", err.message());
                kinds.insert(err.kind());
            }
        }
        assert!(kinds.contains("crash"), "no injected crashes in 400 runs");
        assert!(kinds.contains("timeout"), "no injected hangs in 400 runs");
    }

    #[test]
    fn zero_rate_plan_is_invisible() {
        let faulty = executor(0.0);
        assert!(!faulty.plan().is_active());
        let c = JvmConfig::default_for(faulty.registry());
        for seed in 0..32 {
            let a = faulty.measure(&c, seed);
            let b = faulty.inner().measure(&c, seed);
            assert_eq!(a.time, b.time);
            assert_eq!(a.error, b.error);
        }
    }

    #[test]
    fn retry_rolls_a_fresh_fault_decision() {
        // Find a run seed that crashes, then confirm the protocol's
        // retry (derived seed) usually recovers a score.
        let ex = executor(0.10);
        let c = JvmConfig::default_for(ex.registry());
        let p = Protocol {
            retry: Some(RetryPolicy::default()),
            fail_fast: true,
            ..Protocol::default()
        };
        let mut recovered = 0;
        let mut faulted = 0;
        for base in 0..60u64 {
            let ev = p.evaluate(&ex, &c, base);
            if ev.retried > 0 {
                faulted += 1;
                if ev.ok() {
                    recovered += 1;
                }
            }
        }
        assert!(faulted > 0, "no faults hit in 60 evaluations");
        assert!(
            recovered * 2 >= faulted,
            "retries recovered {recovered}/{faulted}"
        );
    }
}
