//! The crash-safe trial journal: write-ahead logging and replay.
//!
//! A tuning session is a pure function of its seed, so the only state a
//! crash can destroy is the *measurements already paid for*. The journal
//! records exactly those: one JSONL line per completed evaluation, in
//! measurement (slot) order, flushed before the result is acted on —
//! write-ahead semantics. On resume the tuner re-drives the whole
//! deterministic loop and a [`ReplayLog`] serves each evaluation from the
//! journal instead of the executor, so budget, cache, RNG and technique
//! state reconstruct themselves and the resumed session's trace is
//! byte-identical to an uninterrupted run.
//!
//! Two robustness properties:
//!
//! - **Torn tails are expected.** A session killed mid-write leaves a
//!   truncated last line; [`load`] stops there and replays the complete
//!   prefix. Nothing else in the file can be torn because every record is
//!   flushed whole.
//! - **Divergence stops replay, never corrupts it.** The header pins the
//!   session identity (program, executor description — which embeds any
//!   fault plan — seed, budget, options signature); a mismatch refuses to
//!   resume. If the stream still diverges mid-replay (a changed binary),
//!   [`ReplayLog::next_for`] switches to live measurement rather than
//!   serving a wrong result.
//!
//! Durations are stored as exact nanosecond integers: `SimDuration`'s
//! seconds round-trip is lossy, and a single ulp would fork the trace.

use std::collections::VecDeque;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};

use jtune_util::json::{self, JsonObject, JsonValue};
use jtune_util::SimDuration;

use crate::error::TrialError;
use crate::executor::RunCounters;
use crate::protocol::{Evaluation, RaceAbort, RetryRecord};

/// Identity of the session a journal belongs to. All fields must match
/// for a resume to be accepted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionHeader {
    /// Workload / program label.
    pub program: String,
    /// `Executor::describe()` of the session's executor (embeds the
    /// fault plan when one is active).
    pub executor: String,
    /// The session master seed.
    pub seed: u64,
    /// Total tuning budget, exact nanoseconds.
    pub budget_nanos: u64,
    /// Canonical rendering of every option that affects the trial
    /// stream (worker count excluded: it never changes results).
    pub signature: String,
}

/// Journal I/O or format failure.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem error.
    Io(std::io::Error),
    /// The file is not a journal, or its header is unreadable.
    Malformed(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Malformed(m) => write!(f, "malformed journal: {m}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Write-ahead journal writer: truncates, writes the header, then one
/// flushed line per recorded trial.
#[derive(Debug)]
pub struct JournalWriter {
    out: BufWriter<std::fs::File>,
    path: PathBuf,
    trials: u64,
}

impl JournalWriter {
    /// Create (or overwrite) the journal at `path`, writing the header
    /// eagerly so even a zero-trial journal identifies its session.
    pub fn create(path: impl Into<PathBuf>, header: &SessionHeader) -> std::io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::create(&path)?;
        let mut writer = JournalWriter {
            out: BufWriter::new(file),
            path,
            trials: 0,
        };
        let line = JsonObject::new()
            .str("type", "JournalHeader")
            .u64("version", 1)
            .str("program", &header.program)
            .str("executor", &header.executor)
            .u64("seed", header.seed)
            .u64("budget_nanos", header.budget_nanos)
            .str("signature", &header.signature)
            .finish();
        writer.write_line(&line)?;
        Ok(writer)
    }

    /// Append one completed evaluation, flushed to the OS before
    /// returning — the write-ahead guarantee.
    pub fn record(&mut self, fingerprint: u64, evaluation: &Evaluation) -> std::io::Result<()> {
        let line = render_trial(fingerprint, evaluation);
        self.write_line(&line)?;
        self.trials += 1;
        Ok(())
    }

    /// Trials recorded so far (excluding the header).
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()
    }
}

fn nanos(d: SimDuration) -> u64 {
    d.as_nanos()
}

fn render_trial(fingerprint: u64, ev: &Evaluation) -> String {
    let samples: Vec<u64> = ev.samples.iter().map(|s| nanos(*s)).collect();
    let mut obj = JsonObject::new()
        .str("type", "Trial")
        .u64("fp", fingerprint)
        .raw(
            "score",
            &match ev.score {
                Some(s) => nanos(s).to_string(),
                None => "null".to_string(),
            },
        )
        .u64_array("samples", &samples)
        .u64("cost", nanos(ev.cost))
        .u64("runs", ev.runs as u64)
        .u64("retried", ev.retried as u64)
        .opt_str("error_kind", ev.error.as_ref().map(TrialError::kind))
        .opt_str("error", ev.error.as_ref().map(TrialError::message));
    obj = match ev.counters {
        Some(c) => obj.raw(
            "counters",
            &JsonObject::new()
                .u64("gc_pause", nanos(c.gc_pause_total))
                .u64("gc_n", c.gc_collections)
                .u64("jit_time", nanos(c.jit_compile_time))
                .u64("jit_n", c.jit_compiles)
                .finish(),
        ),
        None => obj.raw("counters", "null"),
    };
    obj = match ev.raced {
        Some(r) => obj.raw(
            "raced",
            &JsonObject::new()
                .u64("after_runs", r.after_runs as u64)
                .f64("p_value", r.p_value)
                .f64("effect", r.effect)
                .u64("saved", nanos(r.saved))
                .finish(),
        ),
        None => obj.raw("raced", "null"),
    };
    let retries: Vec<String> = ev
        .retry_log
        .iter()
        .map(|r| {
            JsonObject::new()
                .u64("rep", r.rep as u64)
                .u64("attempt", r.attempt as u64)
                .str("kind", r.error.kind())
                .str("msg", r.error.message())
                .u64("cost", nanos(r.cost))
                .finish()
        })
        .collect();
    obj.raw("retries", &json::array_of(&retries)).finish()
}

/// Load a journal: the header plus every complete trial record, in
/// write order. A torn or corrupt *trailing* line (the signature of a
/// crash mid-write) is discarded; corruption anywhere else is an error.
pub fn load(
    path: impl AsRef<Path>,
) -> Result<(SessionHeader, Vec<(u64, Evaluation)>), JournalError> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| JournalError::Malformed("empty file".to_string()))?;
    let header = parse_header(header_line)?;
    let mut trials = Vec::new();
    let mut rest = lines.peekable();
    while let Some(line) = rest.next() {
        match parse_trial(line) {
            Ok(entry) => trials.push(entry),
            Err(e) if rest.peek().is_none() => {
                // Torn tail from a mid-write crash: replay the prefix.
                let _ = e;
                break;
            }
            Err(e) => return Err(JournalError::Malformed(format!("line: {e}"))),
        }
    }
    Ok((header, trials))
}

/// Compact the journal at `path` in place: load it (discarding any torn
/// trailing line) and rewrite it as exactly one header plus the complete
/// trial records — the same bytes [`JournalWriter`] would have produced
/// for an uninterrupted session. The rewrite goes through a sibling temp
/// file and an atomic rename, so a crash mid-compaction leaves either
/// the old journal or the new one, never a hybrid.
///
/// Returns what [`load`] would: the header and the surviving trials, so
/// a resuming session can compact and replay with a single read.
pub fn compact(
    path: impl AsRef<Path>,
) -> Result<(SessionHeader, Vec<(u64, Evaluation)>), JournalError> {
    let path = path.as_ref();
    let (header, trials) = load(path)?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".compact");
    let tmp = PathBuf::from(tmp);
    {
        let mut writer = JournalWriter::create(&tmp, &header)?;
        for (fingerprint, evaluation) in &trials {
            writer.record(*fingerprint, evaluation)?;
        }
    }
    std::fs::rename(&tmp, path)?;
    Ok((header, trials))
}

fn parse_header(line: &str) -> Result<SessionHeader, JournalError> {
    let v = json::parse(line).map_err(|e| JournalError::Malformed(format!("header: {e}")))?;
    if v.get("type").and_then(JsonValue::as_str) != Some("JournalHeader") {
        return Err(JournalError::Malformed(
            "first line is not a JournalHeader".to_string(),
        ));
    }
    let field = |k: &str| {
        v.get(k)
            .ok_or_else(|| JournalError::Malformed(format!("header missing '{k}'")))
    };
    Ok(SessionHeader {
        program: field("program")?
            .as_str()
            .ok_or_else(|| JournalError::Malformed("bad 'program'".into()))?
            .to_string(),
        executor: field("executor")?
            .as_str()
            .ok_or_else(|| JournalError::Malformed("bad 'executor'".into()))?
            .to_string(),
        seed: field("seed")?
            .as_u64()
            .ok_or_else(|| JournalError::Malformed("bad 'seed'".into()))?,
        budget_nanos: field("budget_nanos")?
            .as_u64()
            .ok_or_else(|| JournalError::Malformed("bad 'budget_nanos'".into()))?,
        signature: field("signature")?
            .as_str()
            .ok_or_else(|| JournalError::Malformed("bad 'signature'".into()))?
            .to_string(),
    })
}

fn parse_trial(line: &str) -> Result<(u64, Evaluation), String> {
    let v = json::parse(line)?;
    if v.get("type").and_then(JsonValue::as_str) != Some("Trial") {
        return Err("not a Trial record".to_string());
    }
    let u64_field = |k: &str| {
        v.get(k)
            .and_then(JsonValue::as_u64)
            .ok_or(format!("bad '{k}'"))
    };
    let fingerprint = u64_field("fp")?;
    let score = match v.get("score") {
        Some(s) if s.is_null() => None,
        Some(s) => Some(SimDuration::from_nanos(s.as_u64().ok_or("bad 'score'")?)),
        None => return Err("missing 'score'".to_string()),
    };
    let samples = v
        .get("samples")
        .and_then(JsonValue::as_array)
        .ok_or("bad 'samples'")?
        .iter()
        .map(|s| s.as_u64().map(SimDuration::from_nanos).ok_or("bad sample"))
        .collect::<Result<Vec<_>, _>>()?;
    let error = match (
        v.get("error_kind").and_then(JsonValue::as_str),
        v.get("error").and_then(JsonValue::as_str),
    ) {
        (Some(kind), Some(msg)) => Some(error_from(kind, msg.to_string())),
        _ => None,
    };
    let counters = match v.get("counters") {
        Some(c) if c.is_null() => None,
        Some(c) => Some(RunCounters {
            gc_pause_total: SimDuration::from_nanos(
                c.get("gc_pause")
                    .and_then(JsonValue::as_u64)
                    .ok_or("bad counters")?,
            ),
            gc_collections: c
                .get("gc_n")
                .and_then(JsonValue::as_u64)
                .ok_or("bad counters")?,
            jit_compile_time: SimDuration::from_nanos(
                c.get("jit_time")
                    .and_then(JsonValue::as_u64)
                    .ok_or("bad counters")?,
            ),
            jit_compiles: c
                .get("jit_n")
                .and_then(JsonValue::as_u64)
                .ok_or("bad counters")?,
        }),
        None => return Err("missing 'counters'".to_string()),
    };
    let raced = match v.get("raced") {
        Some(r) if r.is_null() => None,
        Some(r) => Some(RaceAbort {
            after_runs: r
                .get("after_runs")
                .and_then(JsonValue::as_u64)
                .ok_or("bad raced")? as u32,
            p_value: r
                .get("p_value")
                .and_then(JsonValue::as_f64)
                .ok_or("bad raced")?,
            effect: r
                .get("effect")
                .and_then(JsonValue::as_f64)
                .ok_or("bad raced")?,
            saved: SimDuration::from_nanos(
                r.get("saved")
                    .and_then(JsonValue::as_u64)
                    .ok_or("bad raced")?,
            ),
        }),
        None => return Err("missing 'raced'".to_string()),
    };
    let retry_log = v
        .get("retries")
        .and_then(JsonValue::as_array)
        .ok_or("bad 'retries'")?
        .iter()
        .map(|r| -> Result<RetryRecord, String> {
            Ok(RetryRecord {
                rep: r
                    .get("rep")
                    .and_then(JsonValue::as_u64)
                    .ok_or("bad retry")? as u32,
                attempt: r
                    .get("attempt")
                    .and_then(JsonValue::as_u64)
                    .ok_or("bad retry")? as u32,
                error: error_from(
                    r.get("kind")
                        .and_then(JsonValue::as_str)
                        .ok_or("bad retry")?,
                    r.get("msg")
                        .and_then(JsonValue::as_str)
                        .ok_or("bad retry")?
                        .to_string(),
                ),
                cost: SimDuration::from_nanos(
                    r.get("cost")
                        .and_then(JsonValue::as_u64)
                        .ok_or("bad retry")?,
                ),
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let evaluation = Evaluation {
        score,
        samples,
        error,
        cost: SimDuration::from_nanos(u64_field("cost")?),
        counters,
        runs: u64_field("runs")? as u32,
        raced,
        retried: u64_field("retried")? as u32,
        retry_log,
    };
    Ok((fingerprint, evaluation))
}

fn error_from(kind: &str, message: String) -> TrialError {
    match kind {
        "oom" => TrialError::Oom(message),
        "timeout" => TrialError::Timeout(message),
        "flag-conflict" => TrialError::FlagConflict(message),
        _ => TrialError::Crash(message),
    }
}

/// Completed trials queued for replay, consumed in journal order.
#[derive(Debug, Default)]
pub struct ReplayLog {
    entries: VecDeque<(u64, Evaluation)>,
    served: u64,
    diverged: bool,
}

impl ReplayLog {
    /// Queue `entries` (from [`load`]) for replay.
    pub fn new(entries: Vec<(u64, Evaluation)>) -> ReplayLog {
        ReplayLog {
            entries: entries.into(),
            served: 0,
            diverged: false,
        }
    }

    /// Serve the next journaled evaluation if it belongs to
    /// `fingerprint`. A mismatch means the live session diverged from
    /// the journaled one; replay stops for good and every later trial
    /// is measured live.
    pub fn next_for(&mut self, fingerprint: u64) -> Option<Evaluation> {
        if self.diverged {
            return None;
        }
        match self.entries.front() {
            Some((fp, _)) if *fp == fingerprint => {
                self.served += 1;
                self.entries.pop_front().map(|(_, ev)| ev)
            }
            Some(_) => {
                self.diverged = true;
                None
            }
            None => None,
        }
    }

    /// Evaluations served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Evaluations still queued.
    pub fn remaining(&self) -> usize {
        self.entries.len()
    }

    /// Did replay hit a fingerprint mismatch?
    pub fn diverged(&self) -> bool {
        self.diverged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> SessionHeader {
        SessionHeader {
            program: "spec.compress".to_string(),
            executor: "sim:spec.compress".to_string(),
            seed: 42,
            budget_nanos: 12_000_000_000_000,
            signature: "v1 seed=42 batch=4".to_string(),
        }
    }

    fn rich_eval() -> Evaluation {
        Evaluation {
            score: Some(SimDuration::from_nanos(5_000_000_001)),
            samples: vec![
                SimDuration::from_nanos(4_999_999_999),
                SimDuration::from_nanos(5_000_000_001),
                SimDuration::from_nanos(5_000_000_003),
            ],
            error: None,
            cost: SimDuration::from_nanos(16_500_000_021),
            counters: Some(RunCounters {
                gc_pause_total: SimDuration::from_nanos(123_456_789),
                gc_collections: 17,
                jit_compile_time: SimDuration::from_nanos(987_654_321),
                jit_compiles: 250,
            }),
            runs: 3,
            raced: None,
            retried: 1,
            retry_log: vec![RetryRecord {
                rep: 1,
                attempt: 0,
                error: TrialError::Timeout("injected hang: run timed out after 2m".to_string()),
                cost: SimDuration::from_nanos(120_000_000_000),
            }],
        }
    }

    fn failed_eval() -> Evaluation {
        Evaluation {
            score: None,
            samples: vec![SimDuration::from_nanos(7)],
            error: Some(TrialError::Oom("java.lang.OutOfMemoryError".to_string())),
            cost: SimDuration::from_nanos(99),
            counters: None,
            runs: 2,
            raced: Some(RaceAbort {
                after_runs: 1,
                p_value: 0.1234567890123,
                effect: 2.0 / 3.0,
                saved: SimDuration::from_nanos(31),
            }),
            retried: 0,
            retry_log: Vec::new(),
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("jtune-journal-{}-{name}", std::process::id()))
    }

    #[test]
    fn journal_round_trips_evaluations_exactly() {
        let path = temp_path("roundtrip");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.record(0xDEAD_BEEF_DEAD_BEEF, &rich_eval()).unwrap();
        w.record(7, &failed_eval()).unwrap();
        assert_eq!(w.trials(), 2);
        drop(w);
        let (h, trials) = load(&path).unwrap();
        assert_eq!(h, header());
        assert_eq!(trials.len(), 2);
        assert_eq!(trials[0].0, 0xDEAD_BEEF_DEAD_BEEF);
        assert_eq!(trials[0].1, rich_eval());
        assert_eq!(trials[1].0, 7);
        assert_eq!(trials[1].1, failed_eval());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_discarded_but_inner_corruption_is_an_error() {
        let path = temp_path("torn");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.record(1, &rich_eval()).unwrap();
        w.record(2, &failed_eval()).unwrap();
        drop(w);
        let full = std::fs::read_to_string(&path).unwrap();
        // Kill mid-write: chop the last line in half.
        let torn = &full[..full.len() - 40];
        std::fs::write(&path, torn).unwrap();
        let (_, trials) = load(&path).unwrap();
        assert_eq!(trials.len(), 1, "torn tail should be dropped");
        assert_eq!(trials[0].0, 1);
        // Corruption *before* the tail is not a crash signature: refuse.
        let mut lines: Vec<&str> = full.lines().collect();
        lines[1] = "{garbage";
        std::fs::write(&path, lines.join("\n")).unwrap();
        assert!(matches!(load(&path), Err(JournalError::Malformed(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_drops_torn_tails_and_is_idempotent() {
        let path = temp_path("compact");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.record(1, &rich_eval()).unwrap();
        w.record(2, &failed_eval()).unwrap();
        drop(w);
        let clean = std::fs::read(&path).unwrap();
        // A crash tore the last record mid-write: dead bytes on disk.
        let mut torn = clean.clone();
        torn.extend_from_slice(b"{\"type\":\"Trial\",\"fp\":3,\"sco");
        std::fs::write(&path, &torn).unwrap();
        let (h, trials) = compact(&path).unwrap();
        assert_eq!(h, header());
        assert_eq!(trials.len(), 2);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            clean,
            "compaction must rewrite exactly the complete prefix"
        );
        // Compacting an already-clean journal changes nothing.
        compact(&path).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), clean);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_serves_in_order_and_stops_on_divergence() {
        let mut log = ReplayLog::new(vec![(1, rich_eval()), (2, failed_eval()), (3, rich_eval())]);
        assert_eq!(log.remaining(), 3);
        assert!(log.next_for(1).is_some());
        // Wrong fingerprint: replay is over, even for entries still queued.
        assert!(log.next_for(99).is_none());
        assert!(log.diverged());
        assert!(log.next_for(2).is_none());
        assert_eq!(log.served(), 1);
    }

    #[test]
    fn empty_or_headerless_files_are_rejected() {
        let path = temp_path("empty");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(load(&path), Err(JournalError::Malformed(_))));
        std::fs::write(&path, "{\"type\":\"Trial\"}\n").unwrap();
        assert!(matches!(load(&path), Err(JournalError::Malformed(_))));
        let _ = std::fs::remove_file(&path);
    }
}
