//! Trial memoization: never pay full price to re-measure a configuration
//! the session has already measured.
//!
//! Search techniques — especially population-based ones recombining a
//! small elite set — re-propose configurations. The simulator is a pure
//! function of `(config, seed)`, and even on a real testbed a config's
//! measured distribution is stationary within one tuning session, so a
//! prior [`Evaluation`] is as good as a fresh one. The cache returns it
//! at zero budget charge by default; [`CachePolicy::recharge`] charges a
//! fraction of the original cost instead, modelling testbeds where even
//! a remembered result costs a sanity run.

use std::collections::HashMap;

use jtune_util::SimDuration;

use crate::error::TrialError;
use crate::protocol::Evaluation;

/// How cache hits are charged to the tuning budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CachePolicy {
    /// Fraction of the original evaluation cost charged on a hit, in
    /// `[0, 1]`. `0.0` (default) makes hits free; `1.0` makes the cache
    /// purely observational (hits cost as much as re-measuring).
    pub recharge: f64,
}

impl Default for CachePolicy {
    fn default() -> Self {
        CachePolicy { recharge: 0.0 }
    }
}

impl CachePolicy {
    /// Budget charge for a hit whose original evaluation cost `original`.
    pub fn charge_for(&self, original: SimDuration) -> SimDuration {
        original.mul_f64(self.recharge.clamp(0.0, 1.0))
    }
}

/// Session-scoped memo of completed evaluations, keyed by the canonical
/// configuration fingerprint (`JvmConfig::fingerprint`).
///
/// *Deterministically* failed evaluations are cached too — a
/// configuration whose flags conflict or whose heap cannot hold the live
/// set will fail again, and remembering that is exactly as budget-saving
/// as remembering a score. Two kinds of evaluation must *not* be
/// inserted: racing aborts (an abort is relative to the best-so-far
/// baseline at the time, not a property of the configuration) and
/// transient failures (a hang or signal kill says something about the
/// host at that moment, not about the flags — memoizing it would brand a
/// possibly-good configuration as permanently bad).
#[derive(Clone, Debug, Default)]
pub struct TrialCache {
    entries: HashMap<u64, Evaluation>,
    hits: u64,
}

impl TrialCache {
    /// Empty cache.
    pub fn new() -> TrialCache {
        TrialCache::default()
    }

    /// Look up a fingerprint, counting a hit when present.
    pub fn lookup(&mut self, fingerprint: u64) -> Option<&Evaluation> {
        let entry = self.entries.get(&fingerprint);
        if entry.is_some() {
            self.hits += 1;
        }
        entry
    }

    /// Is the fingerprint cached? (No hit is counted.)
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.entries.contains_key(&fingerprint)
    }

    /// Record a completed evaluation. Racing-aborted and
    /// transiently-failed evaluations are rejected (see the type-level
    /// docs); re-inserting a fingerprint keeps the first entry, so a
    /// session's cached answer is stable.
    pub fn insert(&mut self, fingerprint: u64, evaluation: Evaluation) {
        if evaluation.aborted() {
            return;
        }
        if evaluation
            .error
            .as_ref()
            .is_some_and(TrialError::is_transient)
        {
            return;
        }
        self.entries.entry(fingerprint).or_insert(evaluation);
    }

    /// Distinct configurations stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RaceAbort;

    fn eval(score: f64, cost: f64) -> Evaluation {
        Evaluation {
            score: Some(SimDuration::from_secs_f64(score)),
            samples: vec![SimDuration::from_secs_f64(score)],
            error: None,
            cost: SimDuration::from_secs_f64(cost),
            counters: None,
            runs: 1,
            raced: None,
            retried: 0,
            retry_log: Vec::new(),
        }
    }

    #[test]
    fn lookup_returns_inserted_evaluation_and_counts_hits() {
        let mut cache = TrialCache::new();
        assert!(cache.is_empty());
        cache.insert(7, eval(1.5, 5.0));
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(8).is_none());
        assert_eq!(cache.hits(), 0);
        let hit = cache.lookup(7).expect("cached");
        assert_eq!(hit.score.unwrap().as_secs_f64(), 1.5);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn first_insert_wins() {
        let mut cache = TrialCache::new();
        cache.insert(7, eval(1.5, 5.0));
        cache.insert(7, eval(9.9, 5.0));
        assert_eq!(cache.lookup(7).unwrap().score.unwrap().as_secs_f64(), 1.5);
    }

    #[test]
    fn aborted_evaluations_are_not_cached() {
        let mut cache = TrialCache::new();
        let mut e = eval(1.5, 5.0);
        e.score = None;
        e.raced = Some(RaceAbort {
            after_runs: 2,
            p_value: 0.1,
            effect: 1.0,
            saved: SimDuration::from_secs_f64(1.0),
        });
        cache.insert(3, e);
        assert!(cache.is_empty());
    }

    #[test]
    fn transient_failures_are_not_memoized() {
        let mut cache = TrialCache::new();
        // A watchdog timeout is transient: the host hung, not the flags.
        let mut timeout = eval(0.0, 5.0);
        timeout.score = None;
        timeout.samples.clear();
        timeout.error = Some(TrialError::Timeout("run timed out after 120.0s".into()));
        cache.insert(11, timeout);
        assert!(cache.is_empty(), "transient failure was memoized");
        assert!(cache.lookup(11).is_none());
        // A deterministic failure (OOM) is still worth remembering.
        let mut oom = eval(0.0, 5.0);
        oom.score = None;
        oom.samples.clear();
        oom.error = Some(TrialError::Oom("java.lang.OutOfMemoryError".into()));
        cache.insert(12, oom);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(12).is_some());
    }

    #[test]
    fn recharge_policy_scales_the_hit_cost() {
        let free = CachePolicy::default();
        assert_eq!(
            free.charge_for(SimDuration::from_secs_f64(10.0)),
            SimDuration::ZERO
        );
        let half = CachePolicy { recharge: 0.5 };
        assert_eq!(
            half.charge_for(SimDuration::from_secs_f64(10.0))
                .as_secs_f64(),
            5.0
        );
        let wild = CachePolicy { recharge: 7.0 };
        assert_eq!(
            wild.charge_for(SimDuration::from_secs_f64(10.0))
                .as_secs_f64(),
            10.0
        );
    }
}
