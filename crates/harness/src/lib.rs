//! # jtune-harness
//!
//! The execution harness between the auto-tuner and the JVM being tuned:
//!
//! - [`executor`] — the [`Executor`] abstraction: *something that can run a
//!   configuration and hand back a time*. Two implementations:
//!   [`SimExecutor`] (in-process `jtune-jvmsim`, what every experiment in
//!   the reproduction uses) and [`ProcessExecutor`] (spawns a real `java`
//!   binary and measures wall-clock time, used automatically by the
//!   examples when a JDK is on `PATH` — the paper's actual mode of
//!   operation).
//! - [`protocol`] — the measurement protocol: run each candidate N times,
//!   score by median (run times are noisy and right-skewed), compare
//!   candidate vs. default with a Mann-Whitney U test; optional
//!   sequential racing ([`protocol::Racing`]) abandons statistically
//!   hopeless candidates early.
//! - [`error`] — typed trial failures ([`TrialError`]: crash / OOM /
//!   timeout / flag-conflict) so techniques and traces can distinguish
//!   failure modes, plus the transient-vs-deterministic split the
//!   failure policy (retry, cache, quarantine) is built on.
//! - [`fault`] — deterministic fault injection: a seeded [`FaultPlan`]
//!   and the [`FaultyExecutor`] wrapper inject transient crashes, hangs
//!   and measurement-noise spikes bit-reproducibly, so the robustness
//!   layer is testable.
//! - [`journal`] — the crash-safe trial journal: write-ahead JSONL
//!   records of completed evaluations plus replay, so a killed session
//!   resumes into a byte-identical trace.
//! - [`memo`] — cross-session measurement memoization: an Arc-shared
//!   [`MeasurementCache`] keyed by `(executor, config, seed)` and the
//!   [`MemoExecutor`] wrapper, so a multi-session service reuses paid-for
//!   simulator runs without perturbing any session's deterministic trace.
//! - [`cache`] + [`pipeline`] — the adaptive evaluation pipeline: trial
//!   memoization keyed by configuration fingerprint, within-batch
//!   duplicate suppression, and racing, all budget-accounted.
//! - [`budget`] — the paper's tuning-time budget: every candidate
//!   evaluation is charged (JVM start-up + run time × repeats) against a
//!   virtual wall clock, so "200 minutes of tuning" has the same economics
//!   as in the paper while completing in seconds of host time.
//! - [`pool`] — parallel candidate evaluation on scoped threads with
//!   deterministic seed derivation (results do not depend on thread
//!   interleaving), including order-preserving telemetry emission.
//! - [`results`] — serialisable records of tuning sessions for the
//!   experiment drivers (TSV + JSON).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod budget;
pub mod cache;
pub mod error;
pub mod executor;
pub mod fault;
pub mod journal;
pub mod memo;
pub mod objective;
pub mod pipeline;
pub mod pool;
pub mod protocol;
pub mod results;

pub use budget::{Budget, ChargeOutcome};
pub use cache::{CachePolicy, TrialCache};
pub use error::{QuarantinePolicy, TrialError};
pub use executor::{
    Executor, ExecutorKind, ExecutorSpec, Measurement, ProcessExecutor, RunCounters, SimExecutor,
};
pub use fault::{Fault, FaultPlan, FaultyExecutor};
pub use journal::{JournalError, JournalWriter, ReplayLog, SessionHeader};
pub use memo::{MeasurementCache, MemoExecutor};
pub use objective::Objective;
pub use pipeline::{BatchReport, EvalPipeline, PipelineStats, Provenance};
pub use pool::evaluate_batch;
pub use protocol::{BackoffPolicy, Evaluation, Protocol, RaceAbort, Racing, RetryPolicy, RetryRecord};
pub use results::{SessionRecord, TrialRecord};
