//! Executors: things that run a JVM configuration and measure it.

use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

use jtune_flags::{JvmConfig, Registry};
use jtune_jvmsim::{JvmSim, Machine, RunFailure, Workload};
use jtune_util::SimDuration;

use crate::error::TrialError;
use crate::fault::{FaultPlan, FaultyExecutor};

/// One measured run of one configuration.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Wall-clock run time (virtual for the simulator, real for a
    /// process). Meaningful even on failure (time until the crash).
    pub time: SimDuration,
    /// 99th-percentile stop-the-world pause, when the executor can observe
    /// it (the simulator can; a bare `java` process cannot).
    pub pause_p99: Option<SimDuration>,
    /// Runtime counters for the telemetry stream, when the executor can
    /// observe them (the simulator can; a bare `java` process cannot).
    pub counters: Option<RunCounters>,
    /// Classified failure (crash / OOM / timeout / flag conflict), `None`
    /// on success.
    pub error: Option<TrialError>,
}

/// Per-run VM activity counters surfaced into trial telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunCounters {
    /// Total stop-the-world GC pause time.
    pub gc_pause_total: SimDuration,
    /// GC collections (young + full).
    pub gc_collections: u64,
    /// Time lost to JIT compile stalls.
    pub jit_compile_time: SimDuration,
    /// Methods JIT-compiled (all tiers).
    pub jit_compiles: u64,
}

impl Measurement {
    /// Did the run complete?
    pub fn ok(&self) -> bool {
        self.error.is_none()
    }

    /// The p99 pause in milliseconds, if observed.
    pub fn pause_p99_ms(&self) -> Option<f64> {
        self.pause_p99.map(|p| p.as_millis_f64())
    }
}

/// Anything that can execute a configuration.
///
/// Implementations must be [`Send`] + [`Sync`]: the evaluation pool
/// shares one executor across worker threads, and boxed stacks built
/// from an [`ExecutorSpec`] move into session threads. Determinism
/// contract: for the simulator-backed executor, `measure(config, seed)`
/// is a pure function of its arguments.
pub trait Executor: Send + Sync {
    /// Execute one run. `seed` selects the measurement-noise stream.
    fn measure(&self, config: &JvmConfig, seed: u64) -> Measurement;

    /// The flag registry configurations must come from.
    fn registry(&self) -> &Registry;

    /// Fixed per-run cost charged to the tuning budget *in addition to*
    /// the measured run time (JVM start-up, harness overhead). The paper's
    /// budget burns real minutes per evaluation; this keeps the economics.
    fn fixed_overhead(&self) -> SimDuration {
        SimDuration::from_millis(500)
    }

    /// Short label for reports.
    fn describe(&self) -> String;
}

/// Simulator-backed executor: one workload on one simulated machine.
#[derive(Clone, Debug)]
pub struct SimExecutor {
    sim: JvmSim,
    workload: Workload,
    registry: &'static Registry,
    deadline: Option<SimDuration>,
}

impl SimExecutor {
    /// Executor for `workload` on the default machine and built-in
    /// registry.
    pub fn new(workload: Workload) -> SimExecutor {
        SimExecutor {
            sim: JvmSim::new(),
            workload,
            registry: jtune_flags::hotspot_registry(),
            deadline: None,
        }
    }

    /// Executor on a specific machine.
    pub fn on_machine(workload: Workload, machine: Machine) -> SimExecutor {
        SimExecutor {
            sim: JvmSim::on(machine),
            workload,
            registry: jtune_flags::hotspot_registry(),
            deadline: None,
        }
    }

    /// Honor a virtual run deadline: a run whose simulated time exceeds
    /// it is reported as [`TrialError::Timeout`] with the deadline (the
    /// time the watchdog would have burned) charged as its cost — the
    /// same semantics [`ProcessExecutor::with_deadline`] has for real
    /// hung JVMs.
    pub fn with_deadline(mut self, deadline: SimDuration) -> SimExecutor {
        self.deadline = Some(deadline);
        self
    }

    /// The workload being measured.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Full outcome access (experiments report GC/JIT detail).
    pub fn run_full(&self, config: &JvmConfig, seed: u64) -> jtune_jvmsim::RunOutcome {
        self.sim.run(self.registry, config, &self.workload, seed)
    }
}

impl Executor for SimExecutor {
    fn measure(&self, config: &JvmConfig, seed: u64) -> Measurement {
        let outcome = self.sim.run(self.registry, config, &self.workload, seed);
        if let Some(deadline) = self.deadline {
            if outcome.total > deadline {
                return Measurement {
                    time: deadline,
                    pause_p99: None,
                    counters: None,
                    error: Some(TrialError::Timeout(format!(
                        "run timed out after {deadline} (virtual watchdog)"
                    ))),
                };
            }
        }
        let pause_p99 = if outcome.gc.pauses.count() > 0 {
            Some(outcome.gc.pauses.percentile(99.0))
        } else {
            Some(jtune_util::SimDuration::ZERO)
        };
        let counters = RunCounters {
            gc_pause_total: outcome.gc.pauses.sum(),
            gc_collections: outcome.gc.young_collections + outcome.gc.full_collections,
            jit_compile_time: outcome.breakdown.jit_stall,
            jit_compiles: outcome.jit.c1_compiles + outcome.jit.c2_compiles,
        };
        Measurement {
            time: outcome.total,
            pause_p99,
            counters: Some(counters),
            error: outcome.failure.map(|f| {
                let message = f.to_string();
                match f {
                    RunFailure::OutOfMemory => TrialError::Oom(message),
                    RunFailure::InvalidConfig(_) => TrialError::FlagConflict(message),
                }
            }),
        }
    }

    fn registry(&self) -> &Registry {
        self.registry
    }

    fn describe(&self) -> String {
        format!("sim:{}", self.workload.name)
    }
}

/// Executor that launches a real `java` process — the paper's mode.
///
/// The command line is `java <flags…> <fixed args…>`; run time is the
/// process's wall-clock time. Requires a JDK whose flags match the
/// registry (JDK 7/8 era for the built-in registry; newer JDKs reject
/// removed flags, which surfaces as a measurement error the tuner treats
/// like a crash — exactly what happens on a real testbed).
#[derive(Clone, Debug)]
pub struct ProcessExecutor {
    java: PathBuf,
    fixed_args: Vec<String>,
    registry: &'static Registry,
    deadline: Option<std::time::Duration>,
}

impl ProcessExecutor {
    /// Build with an explicit `java` path and the benchmark command line
    /// (e.g. `["-jar", "dacapo.jar", "h2"]`).
    pub fn new(java: impl Into<PathBuf>, fixed_args: Vec<String>) -> ProcessExecutor {
        ProcessExecutor {
            java: java.into(),
            fixed_args,
            registry: jtune_flags::hotspot_registry(),
            deadline: None,
        }
    }

    /// Watchdog: kill any run still alive after `deadline` and report it
    /// as [`TrialError::Timeout`] (transient — the host hung, not
    /// necessarily the flags). Without a deadline a hung JVM wedges its
    /// worker thread forever.
    pub fn with_deadline(mut self, deadline: std::time::Duration) -> ProcessExecutor {
        self.deadline = Some(deadline);
        self
    }

    /// Find `java` on `PATH`, if any.
    pub fn from_path(fixed_args: Vec<String>) -> Option<ProcessExecutor> {
        let path = std::env::var_os("PATH")?;
        let java = find_java_in(std::env::split_paths(&path))?;
        Some(ProcessExecutor::new(java, fixed_args))
    }

    /// Run with the watchdog: spawn, poll, kill on deadline.
    fn run_with_watchdog(
        &self,
        command: &mut Command,
        limit: std::time::Duration,
    ) -> (SimDuration, Option<TrialError>) {
        let start = Instant::now();
        let mut child = match command.spawn() {
            Ok(child) => child,
            Err(e) => {
                return (
                    SimDuration::from_secs_f64(start.elapsed().as_secs_f64()),
                    Some(TrialError::classify(format!("failed to launch java: {e}"))),
                )
            }
        };
        loop {
            match child.try_wait() {
                Ok(Some(status)) => {
                    let elapsed = SimDuration::from_secs_f64(start.elapsed().as_secs_f64());
                    let error = (!status.success())
                        .then(|| TrialError::classify(format!("java exited with {status}")));
                    return (elapsed, error);
                }
                Ok(None) => {
                    let elapsed = start.elapsed();
                    if elapsed >= limit {
                        let _ = child.kill();
                        let _ = child.wait();
                        return (
                            SimDuration::from_secs_f64(elapsed.as_secs_f64()),
                            Some(TrialError::Timeout(format!(
                                "run timed out after {:.1}s (killed by watchdog)",
                                limit.as_secs_f64()
                            ))),
                        );
                    }
                    let remaining = limit - elapsed;
                    std::thread::sleep(remaining.min(std::time::Duration::from_millis(10)));
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return (
                        SimDuration::from_secs_f64(start.elapsed().as_secs_f64()),
                        Some(TrialError::classify(format!("failed to poll java: {e}"))),
                    );
                }
            }
        }
    }
}

/// Search `dirs` for a `java` launcher: accepts `java` and (for
/// Windows-style layouts) `java.exe`, skipping candidates that exist but
/// are not executable — a directory named `java`, or a plain data file,
/// must not shadow the real launcher later on `PATH`.
fn find_java_in(dirs: impl IntoIterator<Item = PathBuf>) -> Option<PathBuf> {
    for dir in dirs {
        for name in ["java", "java.exe"] {
            let candidate = dir.join(name);
            if candidate.is_file() && is_executable(&candidate) {
                return Some(candidate);
            }
        }
    }
    None
}

#[cfg(unix)]
fn is_executable(path: &std::path::Path) -> bool {
    use std::os::unix::fs::PermissionsExt;
    std::fs::metadata(path).is_ok_and(|m| m.permissions().mode() & 0o111 != 0)
}

#[cfg(not(unix))]
fn is_executable(_path: &std::path::Path) -> bool {
    // Windows has no execute bit; the `.exe` suffix is the convention.
    true
}

impl Executor for ProcessExecutor {
    fn measure(&self, config: &JvmConfig, _seed: u64) -> Measurement {
        let args = config.to_args(self.registry);
        let mut command = Command::new(&self.java);
        command
            .args(&args)
            .args(&self.fixed_args)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null());
        let (time, error) = match self.deadline {
            Some(limit) => self.run_with_watchdog(&mut command, limit),
            None => {
                let start = Instant::now();
                let status = command.status();
                let elapsed = SimDuration::from_secs_f64(start.elapsed().as_secs_f64());
                let error = match status {
                    Ok(s) if s.success() => None,
                    Ok(s) => Some(TrialError::classify(format!("java exited with {s}"))),
                    Err(e) => Some(TrialError::classify(format!("failed to launch java: {e}"))),
                };
                (elapsed, error)
            }
        };
        Measurement {
            time,
            pause_p99: None,
            counters: None,
            error,
        }
    }

    fn registry(&self) -> &Registry {
        self.registry
    }

    fn fixed_overhead(&self) -> SimDuration {
        SimDuration::from_millis(200)
    }

    fn describe(&self) -> String {
        format!("process:{}", self.java.display())
    }
}

impl Executor for Box<dyn Executor> {
    fn measure(&self, config: &JvmConfig, seed: u64) -> Measurement {
        (**self).measure(config, seed)
    }

    fn registry(&self) -> &Registry {
        (**self).registry()
    }

    fn fixed_overhead(&self) -> SimDuration {
        (**self).fixed_overhead()
    }

    fn describe(&self) -> String {
        (**self).describe()
    }
}

/// What kind of backend an [`ExecutorSpec`] builds on.
#[derive(Clone, Debug)]
pub enum ExecutorKind {
    /// The JVM simulator running `Workload` on the default machine.
    Sim(Workload),
    /// A real `java` binary launched per trial.
    Process {
        /// Path to the `java` binary.
        java: PathBuf,
        /// Fixed arguments appended after the tuned `-XX:` flags.
        args: Vec<String>,
    },
}

/// A declarative description of an executor stack.
///
/// The CLI, the experiment drivers, daemon sessions and remote workers
/// all used to hand-wire their Sim/Process/Faulty layers; this is the
/// one description they now build from. `build()` composes the layers
/// in the canonical order (fault injection wraps the backend; callers
/// add memoization/gating on top), so every entry point produces the
/// same stack — and the same `describe()` tag, which is what keys the
/// cross-session [`MeasurementCache`](crate::MeasurementCache) and the
/// journal's resume-signature check.
#[derive(Clone, Debug)]
pub struct ExecutorSpec {
    /// The backend to run trials on.
    pub kind: ExecutorKind,
    /// Per-trial watchdog deadline in seconds (virtual seconds for the
    /// simulator, wall seconds for a process).
    pub deadline_secs: Option<f64>,
    /// Seeded fault injection, if any.
    pub fault: Option<FaultPlan>,
}

impl ExecutorSpec {
    /// A simulator spec for `workload`, no deadline, no faults.
    pub fn sim(workload: Workload) -> ExecutorSpec {
        ExecutorSpec {
            kind: ExecutorKind::Sim(workload),
            deadline_secs: None,
            fault: None,
        }
    }

    /// A process spec launching `java` with fixed `args` per trial.
    pub fn process(java: impl Into<PathBuf>, args: Vec<String>) -> ExecutorSpec {
        ExecutorSpec {
            kind: ExecutorKind::Process {
                java: java.into(),
                args,
            },
            deadline_secs: None,
            fault: None,
        }
    }

    /// Resolve a spec from an executor tag of the form `sim:<workload>`
    /// (the [`Executor::describe`] string of a plain simulator stack).
    /// This is how a remote worker reconstructs the executor a lease
    /// names; tags with extra layers (faults, deadlines) or unknown
    /// workloads are rejected so the lease can be failed back.
    pub fn named(tag: &str) -> Result<ExecutorSpec, String> {
        let Some(name) = tag.strip_prefix("sim:") else {
            return Err(format!("unsupported executor tag {tag:?}"));
        };
        let workload = jtune_workloads::workload_by_name(name)
            .ok_or_else(|| format!("unknown workload {name:?}"))?;
        Ok(ExecutorSpec::sim(workload))
    }

    /// Add a per-trial watchdog deadline (seconds; must be positive).
    pub fn with_deadline(mut self, secs: f64) -> ExecutorSpec {
        self.deadline_secs = Some(secs);
        self
    }

    /// Add (or clear) seeded fault injection.
    pub fn with_fault(mut self, plan: Option<FaultPlan>) -> ExecutorSpec {
        self.fault = plan;
        self
    }

    /// Build the described stack. The concrete layers are erased: every
    /// caller works against `Box<dyn Executor>`, which is itself an
    /// [`Executor`], so the box slots into any wrapper.
    pub fn build(&self) -> Box<dyn Executor> {
        let base: Box<dyn Executor> = match &self.kind {
            ExecutorKind::Sim(workload) => {
                let mut sim = SimExecutor::new(workload.clone());
                if let Some(secs) = self.deadline_secs {
                    sim = sim.with_deadline(SimDuration::from_secs_f64(secs));
                }
                Box::new(sim)
            }
            ExecutorKind::Process { java, args } => {
                let mut process = ProcessExecutor::new(java.clone(), args.clone());
                if let Some(secs) = self.deadline_secs {
                    process = process.with_deadline(std::time::Duration::from_secs_f64(secs));
                }
                Box::new(process)
            }
        };
        match &self.fault {
            Some(plan) => Box::new(FaultyExecutor::new(base, *plan)),
            None => base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtune_flags::FlagValue;

    fn small_workload() -> Workload {
        let mut w = Workload::baseline("exec-test");
        w.total_work = 3e8;
        w
    }

    #[test]
    fn sim_executor_measures_deterministically() {
        let ex = SimExecutor::new(small_workload());
        let c = JvmConfig::default_for(ex.registry());
        let a = ex.measure(&c, 1);
        let b = ex.measure(&c, 1);
        assert!(a.ok());
        assert_eq!(a.time, b.time);
        let c2 = ex.measure(&c, 2);
        assert_ne!(a.time, c2.time);
    }

    #[test]
    fn sim_executor_reports_oom_as_error() {
        let mut w = small_workload();
        w.live_set = 2e9;
        w.nursery_survival = 0.5;
        w.alloc_rate = 4.0; // enough promotion to actually hit the wall
        let ex = SimExecutor::new(w);
        let mut c = JvmConfig::default_for(ex.registry());
        c.set_by_name(ex.registry(), "MaxHeapSize", FlagValue::Int(128 << 20))
            .unwrap();
        let m = ex.measure(&c, 1);
        assert!(!m.ok());
        let err = m.error.unwrap();
        assert_eq!(err.kind(), "oom");
        assert!(err.message().contains("OutOfMemory"));
    }

    #[test]
    fn describe_names_the_workload() {
        let ex = SimExecutor::new(small_workload());
        assert_eq!(ex.describe(), "sim:exec-test");
    }

    #[test]
    fn executor_spec_builds_the_same_stack_as_hand_wiring() {
        let spec = ExecutorSpec::sim(small_workload());
        let built = spec.build();
        let hand = SimExecutor::new(small_workload());
        assert_eq!(built.describe(), hand.describe());
        let c = JvmConfig::default_for(built.registry());
        assert_eq!(built.measure(&c, 3).time, hand.measure(&c, 3).time);

        // A faulty spec reproduces FaultyExecutor's describe tag, so
        // resume-signature checks and cache keys are unchanged.
        let plan = FaultPlan::transient(0.05, 99);
        let faulty_spec = ExecutorSpec::sim(small_workload()).with_fault(Some(plan));
        let hand_faulty = FaultyExecutor::new(SimExecutor::new(small_workload()), plan);
        assert_eq!(faulty_spec.build().describe(), hand_faulty.describe());
    }

    #[test]
    fn executor_spec_named_resolves_sim_tags_only() {
        let spec = ExecutorSpec::named("sim:compress").unwrap();
        assert_eq!(spec.build().describe(), "sim:compress");
        assert!(ExecutorSpec::named("sim:not-a-workload").is_err());
        assert!(ExecutorSpec::named("process:/usr/bin/java").is_err());
        assert!(ExecutorSpec::named("faulty[seed=1]:sim:compress").is_err());
    }

    #[test]
    fn process_executor_handles_missing_binary() {
        let ex = ProcessExecutor::new("/nonexistent/java-binary", vec!["-version".into()]);
        let c = JvmConfig::default_for(ex.registry());
        let m = ex.measure(&c, 0);
        assert!(!m.ok());
        let err = m.error.unwrap();
        assert_eq!(err.kind(), "crash");
        assert!(err.message().contains("failed to launch"));
    }

    #[test]
    fn sim_executor_deadline_reports_timeout() {
        let ex = SimExecutor::new(small_workload());
        let c = JvmConfig::default_for(ex.registry());
        let clean = ex.measure(&c, 1);
        assert!(clean.ok());
        // A deadline just below the clean run time trips the virtual
        // watchdog and charges exactly the deadline.
        let deadline = clean.time - SimDuration::from_millis(1);
        let guarded = SimExecutor::new(small_workload()).with_deadline(deadline);
        let m = guarded.measure(&c, 1);
        assert!(!m.ok());
        let err = m.error.unwrap();
        assert_eq!(err.kind(), "timeout");
        assert!(err.is_transient());
        assert_eq!(m.time, deadline);
        // A generous deadline changes nothing.
        let roomy = SimExecutor::new(small_workload())
            .with_deadline(clean.time + SimDuration::from_secs(1));
        assert_eq!(roomy.measure(&c, 1).time, clean.time);
    }

    #[cfg(unix)]
    #[test]
    fn watchdog_kills_a_hung_process() {
        if !std::path::Path::new("/bin/sleep").exists() {
            eprintln!("skipping: no /bin/sleep");
            return;
        }
        // "java" here is /bin/sleep: it ignores the flag args (treats
        // them as an error) — use a command that really hangs: sh -c.
        let ex = ProcessExecutor::new("/bin/sh", vec!["-c".into(), "sleep 30".into()])
            .with_deadline(std::time::Duration::from_millis(200));
        let c = JvmConfig::default_for(ex.registry());
        let start = std::time::Instant::now();
        let m = ex.measure(&c, 0);
        assert!(start.elapsed() < std::time::Duration::from_secs(10));
        assert!(!m.ok());
        let err = m.error.unwrap();
        assert_eq!(err.kind(), "timeout", "{}", err.message());
        assert!(err.is_transient());
        assert!(err.message().contains("killed by watchdog"));
    }

    #[cfg(unix)]
    #[test]
    fn watchdog_passes_a_fast_process_through() {
        let ex = ProcessExecutor::new("/bin/sh", vec!["-c".into(), "exit 0".into()])
            .with_deadline(std::time::Duration::from_secs(30));
        let c = JvmConfig::default_for(ex.registry());
        let m = ex.measure(&c, 0);
        assert!(m.ok(), "{:?}", m.error);
    }

    #[test]
    fn find_java_accepts_exe_suffix_and_skips_non_executables() {
        let root = std::env::temp_dir().join(format!("jtune-java-search-{}", std::process::id()));
        let plain = root.join("plain");
        let windows = root.join("windows");
        let empty = root.join("empty");
        for d in [&plain, &windows, &empty] {
            std::fs::create_dir_all(d).unwrap();
        }
        std::fs::write(plain.join("java"), b"#!/bin/sh\n").unwrap();
        std::fs::write(windows.join("java.exe"), b"MZ").unwrap();

        #[cfg(unix)]
        {
            use std::os::unix::fs::PermissionsExt;
            let exe = |p: &std::path::Path| {
                std::fs::set_permissions(p, std::fs::Permissions::from_mode(0o755)).unwrap()
            };
            let noexec = |p: &std::path::Path| {
                std::fs::set_permissions(p, std::fs::Permissions::from_mode(0o644)).unwrap()
            };
            // Non-executable `java` must be skipped in favour of a later dir.
            noexec(&plain.join("java"));
            exe(&windows.join("java.exe"));
            let found = find_java_in(vec![empty.clone(), plain.clone(), windows.clone()]);
            assert_eq!(found, Some(windows.join("java.exe")));
            // Once executable, the earlier plain `java` wins.
            exe(&plain.join("java"));
            let found = find_java_in(vec![empty.clone(), plain.clone(), windows.clone()]);
            assert_eq!(found, Some(plain.join("java")));
        }
        #[cfg(not(unix))]
        {
            // No execute bit to distinguish: both names are accepted.
            let found = find_java_in(vec![empty.clone(), windows.clone()]);
            assert_eq!(found, Some(windows.join("java.exe")));
        }
        assert_eq!(find_java_in(vec![empty.clone()]), None);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn process_executor_runs_real_java_if_present() {
        // Exercised only on machines with a JDK; the simulator is the
        // normal path.
        let Some(ex) = ProcessExecutor::from_path(vec!["-version".into()]) else {
            eprintln!("skipping: no java on PATH");
            return;
        };
        let c = JvmConfig::default_for(ex.registry());
        let m = ex.measure(&c, 0);
        // Default config passes no -XX flags, so any JVM accepts it.
        assert!(m.ok(), "{:?}", m.error);
        assert!(m.time > SimDuration::ZERO);
    }
}
