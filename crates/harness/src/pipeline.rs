//! The adaptive candidate-evaluation pipeline.
//!
//! [`EvalPipeline`] sits between the tuner's proposal loop and the
//! evaluation pool and stretches the tuning budget three ways:
//!
//! 1. **Memoization** — a [`TrialCache`] keyed by the canonical
//!    configuration fingerprint serves re-proposed configurations from
//!    memory, charged per [`CachePolicy`] (free by default).
//! 2. **Duplicate suppression** — identical configurations within one
//!    batch run once; later slots clone the earlier result at zero cost.
//! 3. **Racing** — when the [`Protocol`] carries a racing policy and the
//!    caller supplies a best-so-far baseline, statistically hopeless
//!    candidates are abandoned mid-protocol and their unspent repeats
//!    are never charged (see [`crate::protocol::Racing`]).
//!
//! With the cache disabled and no racing policy the pipeline is
//! bit-identical to the plain pool path ([`crate::pool::evaluate_batch`]):
//! every slot is fresh, keeps its `(base_seed, slot)` noise seed, and
//! emits the same [`TraceEvent::TrialMeasured`] stream. That equivalence
//! is what keeps legacy session records byte-stable.
//!
//! Determinism: cache decisions depend only on proposal order, racing
//! decisions only on the frozen baseline passed per batch, and events
//! flush in slot order after the batch joins — so the trace is
//! bit-identical at any worker count even with every feature enabled.

use std::collections::HashMap;

use jtune_flags::JvmConfig;
use jtune_telemetry::{phase, TelemetryBus, TraceEvent};

use crate::cache::{CachePolicy, TrialCache};
use crate::executor::Executor;
use crate::journal::{JournalWriter, ReplayLog};
use crate::pool::{emit_measured, run_selected};
use crate::protocol::{Evaluation, Protocol};
use jtune_util::SimDuration;

/// How one batch slot got its evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Provenance {
    /// Measured by the executor this round.
    Fresh,
    /// Served from the trial cache.
    CacheHit {
        /// The configuration fingerprint that hit.
        fingerprint: u64,
        /// Budget avoided (original cost − re-charge).
        saved: SimDuration,
    },
    /// Identical to an earlier slot in the same batch; its result was
    /// cloned at zero cost.
    Duplicate {
        /// The earlier slot holding the same configuration.
        of: usize,
    },
}

/// One evaluated batch: evaluations in slot order plus where each came
/// from. Cache hits carry the re-charge as their `cost`; duplicates cost
/// zero — so callers can charge `evals[i].cost` uniformly.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Evaluations, in candidate order.
    pub evals: Vec<Evaluation>,
    /// Per-slot provenance, parallel to `evals`.
    pub provenance: Vec<Provenance>,
}

/// Running totals over a pipeline's lifetime (one tuning session).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PipelineStats {
    /// Distinct configurations actually measured by the executor.
    pub fresh: u64,
    /// Slots served from the trial cache.
    pub cache_hits: u64,
    /// Slots suppressed as within-batch duplicates.
    pub suppressed: u64,
    /// Fresh evaluations abandoned early by racing.
    pub aborted: u64,
    /// Transient-failure repeats recovered by the retry policy, summed
    /// over every fresh evaluation.
    pub retried: u64,
    /// Estimated budget the cache, dedup and racing avoided spending.
    pub saved: SimDuration,
}

impl PipelineStats {
    /// Fraction of all served slots that came from memory (cache hits +
    /// duplicates), in `[0, 1]`. The tuner surfaces this to search
    /// techniques as a convergence signal.
    pub fn reuse_fraction(&self) -> f64 {
        let total = self.fresh + self.cache_hits + self.suppressed;
        if total == 0 {
            0.0
        } else {
            (self.cache_hits + self.suppressed) as f64 / total as f64
        }
    }
}

/// The adaptive evaluation pipeline (see the module docs).
#[derive(Debug, Default)]
pub struct EvalPipeline {
    protocol: Protocol,
    cache: Option<(TrialCache, CachePolicy)>,
    stats: PipelineStats,
    /// Write-ahead journal: every fresh evaluation (live or replayed) is
    /// recorded here before the caller sees it.
    journal: Option<JournalWriter>,
    /// Journaled evaluations from a previous run of this same session,
    /// served instead of measuring until exhausted or diverged.
    replay: Option<ReplayLog>,
    journal_errors: u64,
}

impl EvalPipeline {
    /// Pipeline with the given measurement protocol. `cache_policy =
    /// None` disables memoization *and* duplicate suppression (the
    /// legacy, byte-stable path); racing is controlled by
    /// `protocol.racing` plus the per-batch baseline.
    pub fn new(protocol: Protocol, cache_policy: Option<CachePolicy>) -> EvalPipeline {
        EvalPipeline {
            protocol,
            cache: cache_policy.map(|p| (TrialCache::new(), p)),
            stats: PipelineStats::default(),
            journal: None,
            replay: None,
            journal_errors: 0,
        }
    }

    /// Attach a write-ahead journal: every fresh evaluation from now on
    /// is recorded (and flushed) before it is returned. Journal write
    /// failures never fail the run; they are counted in
    /// [`EvalPipeline::journal_errors`].
    pub fn set_journal(&mut self, journal: JournalWriter) {
        self.journal = Some(journal);
    }

    /// Attach a replay log: fresh slots are served from it (in journal
    /// order) instead of the executor until it is exhausted or the
    /// fingerprint stream diverges. Replayed evaluations still count as
    /// fresh, feed the cache, and are re-recorded by any attached
    /// journal — so resume-with-checkpoint rebuilds a complete journal.
    pub fn set_replay(&mut self, replay: ReplayLog) {
        self.replay = Some(replay);
    }

    /// Evaluations served from the replay log so far.
    pub fn replay_served(&self) -> u64 {
        self.replay.as_ref().map_or(0, ReplayLog::served)
    }

    /// Journaled evaluations still queued for replay.
    pub fn replay_remaining(&self) -> usize {
        self.replay.as_ref().map_or(0, ReplayLog::remaining)
    }

    /// Trials recorded to the attached journal (0 without one).
    pub fn journal_trials(&self) -> u64 {
        self.journal.as_ref().map_or(0, JournalWriter::trials)
    }

    /// Evaluations dropped from the journal because a write failed.
    pub fn journal_errors(&self) -> u64 {
        self.journal_errors
    }

    fn record_trial(&mut self, fingerprint: u64, evaluation: &Evaluation) {
        if let Some(journal) = &mut self.journal {
            if journal.record(fingerprint, evaluation).is_err() {
                self.journal_errors += 1;
            }
        }
    }

    /// The measurement protocol in use.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Is memoization (and with it duplicate suppression) on?
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Session totals so far.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Evaluate a single configuration outside any batch (the session's
    /// default-configuration measurement), seeding the cache with the
    /// result. Never races: the baseline candidate itself must always be
    /// measured in full.
    pub fn prime(&mut self, executor: &dyn Executor, config: &JvmConfig, seed: u64) -> Evaluation {
        let fingerprint = config.fingerprint();
        let ev = match self.replay.as_mut().and_then(|r| r.next_for(fingerprint)) {
            Some(replayed) => replayed,
            None => self.protocol.evaluate(executor, config, seed),
        };
        self.stats.fresh += 1;
        self.stats.retried += ev.retried as u64;
        self.record_trial(fingerprint, &ev);
        if let Some((cache, _)) = &mut self.cache {
            cache.insert(fingerprint, ev.clone());
        }
        ev
    }

    /// Evaluate one proposed batch.
    ///
    /// Slots resolve in order: within-batch duplicate → cache hit →
    /// fresh measurement. Fresh slots keep the canonical `(base_seed,
    /// slot)` noise seed, so a partially-cached batch measures its
    /// misses with exactly the seeds a fully-fresh batch would have.
    /// `baseline` (best-so-far samples, seconds) enables racing when the
    /// protocol has a racing policy; it is frozen for the whole batch so
    /// abort decisions cannot depend on worker scheduling.
    ///
    /// Events flush in slot order after the batch joins: one
    /// [`TraceEvent::CacheHit`] / [`TraceEvent::DuplicateSuppressed`] /
    /// [`TraceEvent::TrialMeasured`] (plus [`TraceEvent::TrialAborted`]
    /// for raced-out slots) per slot.
    pub fn evaluate_batch(
        &mut self,
        executor: &dyn Executor,
        candidates: &[JvmConfig],
        base_seed: u64,
        workers: usize,
        baseline: Option<&[f64]>,
        bus: &TelemetryBus,
    ) -> BatchReport {
        let n = candidates.len();
        let mut provenance = vec![Provenance::Fresh; n];
        let mut slots: Vec<Option<Evaluation>> = (0..n).map(|_| None).collect();
        let mut fresh_idx: Vec<usize> = Vec::with_capacity(n);

        if let Some((cache, policy)) = &mut self.cache {
            let mut in_batch: HashMap<u64, usize> = HashMap::with_capacity(n);
            for (i, c) in candidates.iter().enumerate() {
                let fp = c.fingerprint();
                if let Some(&j) = in_batch.get(&fp) {
                    provenance[i] = Provenance::Duplicate { of: j };
                    continue;
                }
                in_batch.insert(fp, i);
                if let Some(prior) = cache.lookup(fp) {
                    let charge = policy.charge_for(prior.cost);
                    let saved = prior.cost.saturating_sub(charge);
                    let mut ev = prior.clone();
                    ev.cost = charge;
                    provenance[i] = Provenance::CacheHit {
                        fingerprint: fp,
                        saved,
                    };
                    slots[i] = Some(ev);
                } else {
                    fresh_idx.push(i);
                }
            }
        } else {
            fresh_idx.extend(0..n);
        }

        // Fresh slots are first offered to the replay log, in slot order
        // (the journal's write order). Once it is exhausted or diverges
        // the remaining slots run live — with their canonical
        // `(base_seed, slot)` seeds, so a session killed mid-batch
        // resumes into exactly the measurements it would have made.
        let mut live_idx: Vec<usize> = Vec::with_capacity(fresh_idx.len());
        match &mut self.replay {
            Some(replay) => {
                for &i in &fresh_idx {
                    match replay.next_for(candidates[i].fingerprint()) {
                        Some(replayed) => slots[i] = Some(replayed),
                        None => live_idx.push(i),
                    }
                }
            }
            None => live_idx.extend_from_slice(&fresh_idx),
        }
        let fresh = run_selected(
            executor,
            self.protocol,
            candidates,
            &live_idx,
            base_seed,
            workers,
            baseline,
        );
        let mut live_walls: Vec<(usize, f64)> = Vec::with_capacity(fresh.len());
        for (&i, (ev, wall)) in live_idx.iter().zip(fresh) {
            slots[i] = Some(ev);
            live_walls.push((i, wall));
        }
        // Per-trial wall latency: one close-only span per live slot,
        // published in slot order after the batch joins (the values are
        // wall-clock and vary run to run; the events are ephemeral, so
        // the JSONL trace is untouched).
        if bus.spans_enabled() {
            for (i, wall) in &live_walls {
                bus.span_closed(phase::TRIAL, *i as u64, *wall);
            }
        }
        for &i in &fresh_idx {
            let ev = slots[i].clone().expect("fresh slot resolved");
            let fingerprint = candidates[i].fingerprint();
            self.record_trial(fingerprint, &ev);
            if let Some((cache, _)) = &mut self.cache {
                cache.insert(fingerprint, ev);
            }
        }
        // Duplicates clone their source slot (always an earlier index,
        // so it is resolved by now) at zero cost.
        for i in 0..n {
            if let Provenance::Duplicate { of } = provenance[i] {
                let mut ev = slots[of].clone().expect("source slot resolved");
                self.stats.saved += ev.cost;
                ev.cost = SimDuration::ZERO;
                slots[i] = Some(ev);
            }
        }

        let evals: Vec<Evaluation> = slots
            .into_iter()
            .map(|s| s.expect("every slot resolved"))
            .collect();

        for (i, (ev, prov)) in evals.iter().zip(provenance.iter()).enumerate() {
            match prov {
                Provenance::Fresh => {
                    self.stats.fresh += 1;
                    self.stats.retried += ev.retried as u64;
                    if let Some(abort) = ev.raced {
                        self.stats.aborted += 1;
                        self.stats.saved += abort.saved;
                    }
                    if bus.is_enabled() {
                        emit_measured(bus, i, ev);
                    }
                }
                Provenance::CacheHit { fingerprint, saved } => {
                    self.stats.cache_hits += 1;
                    self.stats.saved += *saved;
                    if bus.is_enabled() {
                        bus.emit(&TraceEvent::CacheHit {
                            slot: i,
                            fingerprint: *fingerprint,
                            score_secs: ev.score.map(|s| s.as_secs_f64()),
                            cost_secs: ev.cost.as_secs_f64(),
                            saved_secs: saved.as_secs_f64(),
                        });
                    }
                }
                Provenance::Duplicate { of } => {
                    self.stats.suppressed += 1;
                    if bus.is_enabled() {
                        bus.emit(&TraceEvent::DuplicateSuppressed {
                            slot: i,
                            of_slot: *of,
                        });
                    }
                }
            }
        }

        BatchReport { evals, provenance }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SimExecutor;
    use crate::pool::evaluate_batch;
    use jtune_flags::{FlagValue, JvmConfig};
    use jtune_jvmsim::Workload;
    use jtune_telemetry::MemoryRecorder;
    use std::sync::Arc;

    fn executor() -> SimExecutor {
        let mut w = Workload::baseline("pipe-test");
        w.total_work = 2e8;
        SimExecutor::new(w)
    }

    fn candidates(ex: &SimExecutor, n: usize) -> Vec<JvmConfig> {
        let r = ex.registry();
        (0..n)
            .map(|i| {
                let mut c = JvmConfig::default_for(r);
                c.set_by_name(r, "CompileThreshold", FlagValue::Int(1000 + 500 * i as i64))
                    .unwrap();
                c
            })
            .collect()
    }

    #[test]
    fn disabled_pipeline_matches_plain_pool() {
        let ex = executor();
        let cs = candidates(&ex, 6);
        let bus = TelemetryBus::disabled();
        let mut pipe = EvalPipeline::new(Protocol::default(), None);
        let report = pipe.evaluate_batch(&ex, &cs, 7, 4, None, &bus);
        let plain = evaluate_batch(&ex, Protocol::default(), &cs, 7, 4, &bus);
        assert_eq!(report.evals.len(), plain.len());
        for (a, b) in report.evals.iter().zip(plain.iter()) {
            assert_eq!(a.score, b.score);
            assert_eq!(a.samples, b.samples);
            assert_eq!(a.cost, b.cost);
        }
        assert!(report.provenance.iter().all(|p| *p == Provenance::Fresh));
        assert_eq!(pipe.stats().cache_hits, 0);
    }

    #[test]
    fn second_sight_of_a_config_hits_the_cache_for_free() {
        let ex = executor();
        let cs = candidates(&ex, 3);
        let bus = TelemetryBus::disabled();
        let mut pipe = EvalPipeline::new(Protocol::default(), Some(CachePolicy::default()));
        let first = pipe.evaluate_batch(&ex, &cs, 7, 1, None, &bus);
        let again = pipe.evaluate_batch(&ex, &cs, 7, 1, None, &bus);
        for (i, (a, b)) in first.evals.iter().zip(again.evals.iter()).enumerate() {
            assert_eq!(a.score, b.score, "slot {i}");
            assert!(b.cost == SimDuration::ZERO, "hit charged");
            assert!(matches!(again.provenance[i], Provenance::CacheHit { .. }));
        }
        let stats = pipe.stats();
        assert_eq!(stats.fresh, 3);
        assert_eq!(stats.cache_hits, 3);
        assert!(stats.saved > SimDuration::ZERO);
        assert!(stats.reuse_fraction() > 0.49);
    }

    #[test]
    fn recharge_policy_charges_a_fraction_on_hits() {
        let ex = executor();
        let cs = candidates(&ex, 1);
        let bus = TelemetryBus::disabled();
        let mut pipe = EvalPipeline::new(Protocol::default(), Some(CachePolicy { recharge: 0.5 }));
        let first = pipe.evaluate_batch(&ex, &cs, 7, 1, None, &bus);
        let again = pipe.evaluate_batch(&ex, &cs, 7, 1, None, &bus);
        let half = first.evals[0].cost.as_secs_f64() * 0.5;
        assert!((again.evals[0].cost.as_secs_f64() - half).abs() < 1e-9);
    }

    #[test]
    fn duplicates_within_a_batch_run_once() {
        let ex = executor();
        let mut cs = candidates(&ex, 2);
        cs.push(cs[0].clone());
        cs.push(cs[1].clone());
        let rec = Arc::new(MemoryRecorder::new());
        let bus = TelemetryBus::new().with(rec.clone());
        let mut pipe = EvalPipeline::new(Protocol::default(), Some(CachePolicy::default()));
        let report = pipe.evaluate_batch(&ex, &cs, 7, 4, None, &bus);
        assert_eq!(report.provenance[2], Provenance::Duplicate { of: 0 });
        assert_eq!(report.provenance[3], Provenance::Duplicate { of: 1 });
        assert_eq!(report.evals[2].score, report.evals[0].score);
        assert_eq!(report.evals[2].cost, SimDuration::ZERO);
        assert_eq!(pipe.stats().suppressed, 2);
        assert_eq!(pipe.stats().fresh, 2);
        let dup_events: Vec<_> = rec
            .events()
            .into_iter()
            .filter(|e| matches!(e, TraceEvent::DuplicateSuppressed { .. }))
            .collect();
        assert_eq!(dup_events.len(), 2);
    }

    #[test]
    fn partially_cached_batch_keeps_slot_seeds() {
        let ex = executor();
        let cs = candidates(&ex, 5);
        let bus = TelemetryBus::disabled();
        // Pre-warm the cache with slots 0 and 2 via a different batch.
        let mut pipe = EvalPipeline::new(Protocol::default(), Some(CachePolicy::default()));
        pipe.evaluate_batch(&ex, &[cs[0].clone(), cs[2].clone()], 99, 1, None, &bus);
        let mixed = pipe.evaluate_batch(&ex, &cs, 7, 4, None, &bus);
        // The fresh slots must match what an uncached batch would measure.
        let full = evaluate_batch(&ex, Protocol::default(), &cs, 7, 4, &bus);
        for i in [1usize, 3, 4] {
            assert!(matches!(mixed.provenance[i], Provenance::Fresh));
            assert_eq!(mixed.evals[i].samples, full[i].samples, "slot {i}");
        }
        assert!(matches!(mixed.provenance[0], Provenance::CacheHit { .. }));
        assert!(matches!(mixed.provenance[2], Provenance::CacheHit { .. }));
    }

    fn journal_header(ex: &SimExecutor) -> crate::journal::SessionHeader {
        crate::journal::SessionHeader {
            program: "pipe-test".to_string(),
            executor: ex.describe(),
            seed: 7,
            budget_nanos: 0,
            signature: "test".to_string(),
        }
    }

    fn temp_journal(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("jtune-pipe-{}-{name}.jsonl", std::process::id()))
    }

    #[test]
    fn replay_reproduces_a_journaled_session_bit_for_bit() {
        let ex = executor();
        let cs = candidates(&ex, 4);
        let bus = TelemetryBus::disabled();
        let path = temp_journal("replay");
        let rebuilt = temp_journal("replay-rebuilt");

        let mut original = EvalPipeline::new(Protocol::default(), Some(CachePolicy::default()));
        original.set_journal(JournalWriter::create(&path, &journal_header(&ex)).unwrap());
        let default = JvmConfig::default_for(ex.registry());
        let prime_a = original.prime(&ex, &default, 42);
        let batch_a = original.evaluate_batch(&ex, &cs, 7, 2, None, &bus);
        assert_eq!(original.journal_trials(), 5);
        assert_eq!(original.journal_errors(), 0);

        // Resume: a *different* workload proves evaluations come from the
        // journal, not the executor; a second journal proves resume
        // rebuilds a complete journal (the same-path checkpoint case).
        let mut other = Workload::baseline("pipe-test-other");
        other.total_work = 9e8;
        let slow = SimExecutor::new(other);
        let (_, trials) = crate::journal::load(&path).unwrap();
        let mut resumed = EvalPipeline::new(Protocol::default(), Some(CachePolicy::default()));
        resumed.set_replay(ReplayLog::new(trials));
        resumed.set_journal(JournalWriter::create(&rebuilt, &journal_header(&ex)).unwrap());
        let prime_b = resumed.prime(&slow, &default, 42);
        let batch_b = resumed.evaluate_batch(&slow, &cs, 7, 2, None, &bus);

        assert_eq!(prime_b, prime_a);
        for (a, b) in batch_a.evals.iter().zip(batch_b.evals.iter()) {
            assert_eq!(a, b, "replayed batch diverged");
        }
        assert_eq!(resumed.replay_served(), 5);
        assert_eq!(resumed.replay_remaining(), 0);
        assert_eq!(resumed.journal_trials(), 5);
        let (_, rebuilt_trials) = crate::journal::load(&rebuilt).unwrap();
        assert_eq!(rebuilt_trials.len(), 5);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rebuilt);
    }

    #[test]
    fn replay_exhaustion_falls_back_to_live_canonical_seeds() {
        let ex = executor();
        let cs = candidates(&ex, 5);
        let bus = TelemetryBus::disabled();

        // Journal only a prefix of the batch: a session killed mid-batch.
        let full = evaluate_batch(&ex, Protocol::default(), &cs, 7, 1, &bus);
        let journaled: Vec<(u64, Evaluation)> = cs
            .iter()
            .zip(full.iter())
            .take(2)
            .map(|(c, ev)| (c.fingerprint(), ev.clone()))
            .collect();

        let mut pipe = EvalPipeline::new(Protocol::default(), None);
        pipe.set_replay(ReplayLog::new(journaled));
        let report = pipe.evaluate_batch(&ex, &cs, 7, 1, None, &bus);
        assert_eq!(pipe.replay_served(), 2);
        for (i, (a, b)) in report.evals.iter().zip(full.iter()).enumerate() {
            assert_eq!(
                a.samples, b.samples,
                "slot {i} drifted after replay ran dry"
            );
        }
    }

    #[test]
    fn replay_divergence_switches_to_live_measurement() {
        let ex = executor();
        let cs = candidates(&ex, 3);
        let bus = TelemetryBus::disabled();
        let full = evaluate_batch(&ex, Protocol::default(), &cs, 7, 1, &bus);

        // Journal claims a different slot-1 fingerprint: a changed
        // proposal stream. Replay serves slot 0, then stops for good.
        let journaled = vec![
            (cs[0].fingerprint(), full[0].clone()),
            (0xBAD0_BAD0_BAD0_BAD0, full[1].clone()),
            (cs[2].fingerprint(), full[2].clone()),
        ];
        let mut pipe = EvalPipeline::new(Protocol::default(), None);
        pipe.set_replay(ReplayLog::new(journaled));
        let report = pipe.evaluate_batch(&ex, &cs, 7, 1, None, &bus);
        assert_eq!(pipe.replay_served(), 1);
        for (i, (a, b)) in report.evals.iter().zip(full.iter()).enumerate() {
            assert_eq!(a.samples, b.samples, "slot {i} wrong after divergence");
        }
    }

    #[test]
    fn prime_seeds_the_cache() {
        let ex = executor();
        let c = JvmConfig::default_for(ex.registry());
        let bus = TelemetryBus::disabled();
        let mut pipe = EvalPipeline::new(Protocol::default(), Some(CachePolicy::default()));
        let ev = pipe.prime(&ex, &c, 42);
        assert!(ev.ok());
        let report = pipe.evaluate_batch(&ex, std::slice::from_ref(&c), 7, 1, None, &bus);
        assert!(matches!(report.provenance[0], Provenance::CacheHit { .. }));
        assert_eq!(report.evals[0].score, ev.score);
    }
}
