//! The measurement protocol: repeats, medians, significance.

use jtune_flags::JvmConfig;
use jtune_util::stats;
use jtune_util::SimDuration;

use crate::executor::{Executor, RunCounters};
use crate::objective::Objective;

/// How a candidate configuration is measured.
#[derive(Clone, Copy, Debug)]
pub struct Protocol {
    /// Runs per candidate. The paper runs each candidate a small fixed
    /// number of times within the budget; 3 is the default here.
    pub repeats: u32,
    /// Give up on a candidate after its first failed run (a crashed JVM
    /// will crash again; don't burn budget confirming it).
    pub fail_fast: bool,
    /// What the score optimises (default: run time, as in the paper).
    pub objective: Objective,
}

impl Default for Protocol {
    fn default() -> Self {
        Protocol {
            repeats: 3,
            fail_fast: true,
            objective: Objective::Throughput,
        }
    }
}

/// The scored result of measuring one candidate.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// Median objective value of the successful repeats (seconds for the
    /// throughput objective; lower is better). `None` when the candidate
    /// failed.
    pub score: Option<SimDuration>,
    /// All successful per-run objective values, in run order.
    pub samples: Vec<SimDuration>,
    /// First failure message, if any run failed.
    pub error: Option<String>,
    /// Total budget cost: measured time of every run (including failed
    /// ones) plus fixed per-run overhead.
    pub cost: SimDuration,
    /// VM activity counters summed across all runs (including failed
    /// ones), when the executor observes them.
    pub counters: Option<RunCounters>,
}

impl Evaluation {
    /// Did the candidate produce a score?
    pub fn ok(&self) -> bool {
        self.score.is_some()
    }
}

impl Protocol {
    /// Measure `config` `repeats` times through `executor`, deriving each
    /// run's noise seed from `base_seed`.
    pub fn evaluate(
        &self,
        executor: &dyn Executor,
        config: &JvmConfig,
        base_seed: u64,
    ) -> Evaluation {
        let mut samples = Vec::with_capacity(self.repeats as usize);
        let mut cost = SimDuration::ZERO;
        let mut error = None;
        let mut counters: Option<RunCounters> = None;
        for rep in 0..self.repeats.max(1) {
            let seed = base_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(rep as u64);
            let m = executor.measure(config, seed);
            cost += m.time + executor.fixed_overhead();
            if let Some(c) = m.counters {
                let total = counters.get_or_insert_with(RunCounters::default);
                total.gc_pause_total += c.gc_pause_total;
                total.gc_collections += c.gc_collections;
                total.jit_compile_time += c.jit_compile_time;
                total.jit_compiles += c.jit_compiles;
            }
            match self.objective.score(&m) {
                Some(value) => samples.push(SimDuration::from_secs_f64(value)),
                None => {
                    error = m.error;
                    if self.fail_fast {
                        break;
                    }
                }
            }
        }
        let score = if samples.is_empty() || error.is_some() {
            // A configuration that crashed even once is not trusted.
            None
        } else {
            let times: Vec<f64> = samples.iter().map(|s| s.as_secs_f64()).collect();
            Some(SimDuration::from_secs_f64(stats::median(&times)))
        };
        Evaluation {
            score,
            samples,
            error,
            cost,
            counters,
        }
    }

    /// Two-sided Mann-Whitney comparison of two evaluations' samples.
    /// Returns `(p_value, effect)` where effect < 0.5 means `a` tends to be
    /// faster; `None` if either has no successful samples.
    pub fn compare(a: &Evaluation, b: &Evaluation) -> Option<(f64, f64)> {
        let xa: Vec<f64> = a.samples.iter().map(|s| s.as_secs_f64()).collect();
        let xb: Vec<f64> = b.samples.iter().map(|s| s.as_secs_f64()).collect();
        stats::mann_whitney_u(&xa, &xb).map(|m| (m.p_value, m.effect))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SimExecutor;
    use jtune_flags::{FlagValue, JvmConfig};
    use jtune_jvmsim::Workload;

    fn executor() -> SimExecutor {
        let mut w = Workload::baseline("proto-test");
        w.total_work = 3e8;
        SimExecutor::new(w)
    }

    #[test]
    fn evaluation_scores_by_median() {
        let ex = executor();
        let c = JvmConfig::default_for(ex.registry());
        let ev = Protocol {
            repeats: 5,
            fail_fast: true,
            ..Protocol::default()
        }
        .evaluate(&ex, &c, 42);
        assert!(ev.ok());
        assert_eq!(ev.samples.len(), 5);
        let mut times: Vec<f64> = ev.samples.iter().map(|s| s.as_secs_f64()).collect();
        times.sort_by(f64::total_cmp);
        assert!((ev.score.unwrap().as_secs_f64() - times[2]).abs() < 1e-9);
        // Cost exceeds the sum of run times (startup overhead).
        let run_sum: SimDuration = ev.samples.iter().copied().sum();
        assert!(ev.cost > run_sum);
    }

    #[test]
    fn failing_config_yields_no_score_and_fail_fast_saves_budget() {
        let mut w = Workload::baseline("oom");
        w.total_work = 3e8;
        w.live_set = 2e9;
        w.nursery_survival = 0.5;
        let ex = SimExecutor::new(w);
        let mut c = JvmConfig::default_for(ex.registry());
        c.set_by_name(ex.registry(), "MaxHeapSize", FlagValue::Int(64 << 20))
            .unwrap();
        let fast = Protocol {
            repeats: 5,
            fail_fast: true,
            ..Protocol::default()
        }
        .evaluate(&ex, &c, 1);
        assert!(!fast.ok());
        assert!(fast.error.is_some());
        let slow = Protocol {
            repeats: 5,
            fail_fast: false,
            ..Protocol::default()
        }
        .evaluate(&ex, &c, 1);
        assert!(!slow.ok());
        assert!(slow.cost >= fast.cost);
    }

    #[test]
    fn evaluation_is_deterministic_in_seed() {
        let ex = executor();
        let c = JvmConfig::default_for(ex.registry());
        let p = Protocol::default();
        let a = p.evaluate(&ex, &c, 9);
        let b = p.evaluate(&ex, &c, 9);
        assert_eq!(a.score, b.score);
        assert_eq!(a.samples, b.samples);
        let c2 = p.evaluate(&ex, &c, 10);
        assert_ne!(a.samples, c2.samples);
    }

    #[test]
    fn compare_distinguishes_clearly_different_configs() {
        let ex = executor();
        let p = Protocol {
            repeats: 6,
            fail_fast: true,
            ..Protocol::default()
        };
        let default = JvmConfig::default_for(ex.registry());
        let mut slow = default.clone();
        // Interpreter-only is drastically slower.
        slow.set_by_name(ex.registry(), "UseCompiler", FlagValue::Bool(false))
            .unwrap();
        let ev_fast = p.evaluate(&ex, &default, 1);
        let ev_slow = p.evaluate(&ex, &slow, 1);
        let (p_value, effect) = Protocol::compare(&ev_fast, &ev_slow).unwrap();
        assert!(p_value < 0.05, "p {p_value}");
        assert!(effect < 0.5);
    }

    #[test]
    fn repeats_zero_is_clamped_to_one() {
        let ex = executor();
        let c = JvmConfig::default_for(ex.registry());
        let ev = Protocol {
            repeats: 0,
            fail_fast: true,
            ..Protocol::default()
        }
        .evaluate(&ex, &c, 1);
        assert_eq!(ev.samples.len(), 1);
    }
}
