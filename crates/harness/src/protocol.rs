//! The measurement protocol: repeats, medians, significance, racing.

use jtune_flags::JvmConfig;
use jtune_util::stats;
use jtune_util::SimDuration;

use crate::error::TrialError;
use crate::executor::{Executor, RunCounters};
use crate::objective::Objective;

/// Sequential early-termination ("racing") policy.
///
/// After [`Racing::min_repeats`] successful runs, the remaining repeats
/// of a candidate are skipped when a Mann-Whitney U test says its samples
/// are already significantly slower than the best-so-far baseline (p
/// below [`Racing::alpha`] with effect above 0.5). The unspent repeats
/// are never charged to the tuning budget — that refund is what lets the
/// same budget cover more distinct configurations.
///
/// The default (`min_repeats = 2`, `alpha = 0.2`) is deliberately
/// conservative at the paper's `repeats = 3` protocol: with only two
/// candidate samples against a three-sample baseline, the minimum
/// attainable p-value (~0.149) requires *complete separation* — both
/// candidate runs slower than every baseline run — and a candidate in
/// that position can no longer beat the baseline median regardless of
/// its final run, so the abort cannot discard a would-be winner.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Racing {
    /// Runs to complete before the first abort check (≥ 1).
    pub min_repeats: u32,
    /// Significance level an abort requires.
    pub alpha: f64,
}

impl Default for Racing {
    fn default() -> Self {
        Racing {
            min_repeats: 2,
            alpha: 0.2,
        }
    }
}

/// Details of a racing abort.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RaceAbort {
    /// Successful runs completed when the candidate was abandoned.
    pub after_runs: u32,
    /// Mann-Whitney p-value at the abort.
    pub p_value: f64,
    /// Mann-Whitney effect (above 0.5 = candidate slower than baseline).
    pub effect: f64,
    /// Estimated budget saved: unspent repeats × mean cost per run so far.
    pub saved: SimDuration,
}

/// Bounded, budget-charged retries of *transient* run failures.
///
/// A run that fails transiently (see [`TrialError::is_transient`]) is
/// repeated up to [`RetryPolicy::max_retries`] times under a derived
/// noise seed before the failure is accepted. Every attempt — including
/// the failed ones — is charged to the tuning budget, and each successive
/// retry of the same run costs [`RetryPolicy::backoff`]× more than the
/// last (a stand-in for the back-off delay a real harness would sleep,
/// which burns tuning time without producing a sample). Deterministic
/// failures are never retried: the configuration itself is bad.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Extra attempts allowed per run (0 disables retrying).
    pub max_retries: u32,
    /// Cost multiplier per successive attempt (≥ 1): attempt *k* is
    /// charged `backoff^k` × its measured cost.
    pub backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff: 1.5,
        }
    }
}

impl RetryPolicy {
    /// Budget-cost multiplier for attempt `attempt` (0 = the original try).
    pub fn cost_factor(&self, attempt: u32) -> f64 {
        self.backoff.max(1.0).powi(attempt as i32)
    }
}

/// Seeded, jittered exponential backoff for *wire* retries (client
/// resubmits, worker reconnects), derived from the same
/// [`RetryPolicy`] growth curve that prices trial retries.
///
/// Delays are a pure function of `(policy, attempt)`: attempt *k*
/// sleeps `base_ms × backoff^k`, capped at [`BackoffPolicy::cap_ms`],
/// scaled by a half-to-full jitter factor drawn from a
/// [`SplitMix64`](jtune_util::SplitMix64) stream keyed on
/// [`BackoffPolicy::seed`] and the attempt index — bit-reproducible, so
/// chaos tests can replay the exact retry schedule. A server-supplied
/// `retry_after_ms` hint acts as a floor: the computed delay never
/// undercuts what the server asked for.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BackoffPolicy {
    /// Retry budget and per-attempt growth factor (reuses
    /// [`RetryPolicy::cost_factor`] as the exponential curve).
    pub retry: RetryPolicy,
    /// Delay before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Upper bound on any single delay, in milliseconds.
    pub cap_ms: u64,
    /// Seed for the jitter stream (vary per process to de-synchronise
    /// a thundering herd; keep fixed to replay a schedule).
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            retry: RetryPolicy {
                max_retries: 5,
                backoff: 2.0,
            },
            base_ms: 100,
            cap_ms: 5_000,
            seed: 0,
        }
    }
}

impl BackoffPolicy {
    /// Is attempt `attempt` (0 = the original try) allowed another retry?
    pub fn should_retry(&self, attempt: u32) -> bool {
        attempt < self.retry.max_retries
    }

    /// Delay in milliseconds before retrying after failed attempt
    /// `attempt` (0-based). `hint_ms` is the server's `retry_after_ms`
    /// suggestion, honoured as a lower bound.
    pub fn delay_ms(&self, attempt: u32, hint_ms: Option<u64>) -> u64 {
        let raw = (self.base_ms as f64 * self.retry.cost_factor(attempt))
            .min(self.cap_ms as f64);
        let mut rng = jtune_util::SplitMix64::new(
            self.seed ^ (attempt as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        use jtune_util::Rng;
        let jittered = (raw * (0.5 + 0.5 * rng.next_f64())).round() as u64;
        jittered.min(self.cap_ms).max(hint_ms.unwrap_or(0))
    }
}

/// One retried attempt inside an [`Evaluation`] (for traces and the
/// trial journal).
#[derive(Clone, Debug, PartialEq)]
pub struct RetryRecord {
    /// Which protocol run (0-based repeat index) failed.
    pub rep: u32,
    /// 0-based attempt index that failed (0 = the original try).
    pub attempt: u32,
    /// The transient failure that triggered the retry.
    pub error: TrialError,
    /// Budget charged for the failed attempt (backoff premium included).
    pub cost: SimDuration,
}

/// How a candidate configuration is measured.
#[derive(Clone, Copy, Debug)]
pub struct Protocol {
    /// Runs per candidate. The paper runs each candidate a small fixed
    /// number of times within the budget; 3 is the default here.
    pub repeats: u32,
    /// Give up on a candidate after its first failed run (a crashed JVM
    /// will crash again; don't burn budget confirming it).
    pub fail_fast: bool,
    /// What the score optimises (default: run time, as in the paper).
    pub objective: Objective,
    /// Early-termination policy; `None` always burns all repeats (the
    /// paper's fixed-repeat protocol).
    pub racing: Option<Racing>,
    /// Transient-failure retry policy; `None` accepts the first failure
    /// (every failure looks deterministic, the pre-fault-tolerance
    /// behaviour).
    pub retry: Option<RetryPolicy>,
}

impl Default for Protocol {
    fn default() -> Self {
        Protocol {
            repeats: 3,
            fail_fast: true,
            objective: Objective::Throughput,
            racing: None,
            retry: None,
        }
    }
}

/// The scored result of measuring one candidate.
#[derive(Clone, Debug, PartialEq)]
pub struct Evaluation {
    /// Median objective value of the successful repeats (seconds for the
    /// throughput objective; lower is better). `None` when the candidate
    /// failed or was raced out.
    pub score: Option<SimDuration>,
    /// All successful per-run objective values, in run order.
    pub samples: Vec<SimDuration>,
    /// First classified failure, if any run failed.
    pub error: Option<TrialError>,
    /// Total budget cost: measured time of every run (including failed
    /// ones) plus fixed per-run overhead. Skipped repeats cost nothing.
    pub cost: SimDuration,
    /// VM activity counters summed across all runs (including failed
    /// ones), when the executor observes them.
    pub counters: Option<RunCounters>,
    /// Runs actually executed (≤ the protocol's repeat count). Retried
    /// attempts do not count: a run that succeeded on its second attempt
    /// is still one run.
    pub runs: u32,
    /// Set when racing abandoned the candidate early.
    pub raced: Option<RaceAbort>,
    /// Transient-failure retries performed (0 without a retry policy).
    pub retried: u32,
    /// One record per retried attempt, in occurrence order.
    pub retry_log: Vec<RetryRecord>,
}

impl Evaluation {
    /// Did the candidate produce a score?
    pub fn ok(&self) -> bool {
        self.score.is_some()
    }

    /// Was the candidate abandoned by racing?
    pub fn aborted(&self) -> bool {
        self.raced.is_some()
    }
}

impl Protocol {
    /// Measure `config` `repeats` times through `executor`, deriving each
    /// run's noise seed from `base_seed`. Never races (no baseline).
    pub fn evaluate(
        &self,
        executor: &dyn Executor,
        config: &JvmConfig,
        base_seed: u64,
    ) -> Evaluation {
        self.evaluate_raced(executor, config, base_seed, None)
    }

    /// [`Protocol::evaluate`] with a racing baseline: when this protocol
    /// has a [`Racing`] policy and `baseline` holds the best-so-far
    /// samples (seconds), the candidate is abandoned as soon as it is
    /// statistically hopeless, refunding the unspent repeats.
    pub fn evaluate_raced(
        &self,
        executor: &dyn Executor,
        config: &JvmConfig,
        base_seed: u64,
        baseline: Option<&[f64]>,
    ) -> Evaluation {
        let planned = self.repeats.max(1);
        let mut samples = Vec::with_capacity(planned as usize);
        let mut cost = SimDuration::ZERO;
        let mut error = None;
        let mut counters: Option<RunCounters> = None;
        let mut runs: u32 = 0;
        let mut raced: Option<RaceAbort> = None;
        let mut retried: u32 = 0;
        let mut retry_log: Vec<RetryRecord> = Vec::new();
        for rep in 0..planned {
            let rep_seed = base_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(rep as u64);
            let mut attempt: u32 = 0;
            let m = loop {
                // Attempt 0 keeps the pre-retry seed formula bit-for-bit;
                // retries draw a fresh noise stream so a transient fault
                // tied to the seed is not replayed verbatim.
                let seed = if attempt == 0 {
                    rep_seed
                } else {
                    rep_seed ^ (attempt as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93)
                };
                let m = executor.measure(config, seed);
                let mut attempt_cost = m.time + executor.fixed_overhead();
                if let Some(policy) = self.retry {
                    let factor = policy.cost_factor(attempt);
                    if factor != 1.0 {
                        attempt_cost = attempt_cost.mul_f64(factor);
                    }
                }
                cost += attempt_cost;
                if let Some(c) = m.counters {
                    let total = counters.get_or_insert_with(RunCounters::default);
                    total.gc_pause_total += c.gc_pause_total;
                    total.gc_collections += c.gc_collections;
                    total.jit_compile_time += c.jit_compile_time;
                    total.jit_compiles += c.jit_compiles;
                }
                match (&m.error, self.retry) {
                    (Some(e), Some(policy)) if e.is_transient() && attempt < policy.max_retries => {
                        retried += 1;
                        retry_log.push(RetryRecord {
                            rep,
                            attempt,
                            error: e.clone(),
                            cost: attempt_cost,
                        });
                        attempt += 1;
                    }
                    _ => break m,
                }
            };
            runs += 1;
            match self.objective.score(&m) {
                Some(value) => samples.push(SimDuration::from_secs_f64(value)),
                None => {
                    error = m.error;
                    if self.fail_fast {
                        break;
                    }
                }
            }
            if let Some(abort) = self.race_check(baseline, &samples, error.is_some(), runs, cost) {
                raced = Some(abort);
                break;
            }
        }
        let score = if samples.is_empty() || error.is_some() || raced.is_some() {
            // A configuration that crashed even once is not trusted; a
            // raced-out candidate is censored (its partial median would
            // bias the record optimistically).
            None
        } else {
            let times: Vec<f64> = samples.iter().map(|s| s.as_secs_f64()).collect();
            Some(SimDuration::from_secs_f64(stats::median(&times)))
        };
        Evaluation {
            score,
            samples,
            error,
            cost,
            counters,
            runs,
            raced,
            retried,
            retry_log,
        }
    }

    /// Should the candidate be abandoned after its latest run?
    fn race_check(
        &self,
        baseline: Option<&[f64]>,
        samples: &[SimDuration],
        failed: bool,
        runs: u32,
        cost: SimDuration,
    ) -> Option<RaceAbort> {
        let racing = self.racing?;
        let baseline = baseline?;
        let planned = self.repeats.max(1);
        let done = samples.len() as u32;
        if failed || baseline.is_empty() || done < racing.min_repeats.max(1) || runs >= planned {
            return None;
        }
        let xs: Vec<f64> = samples.iter().map(|s| s.as_secs_f64()).collect();
        let mw = stats::mann_whitney_u(&xs, baseline)?;
        if mw.p_value < racing.alpha && mw.effect > 0.5 {
            let per_run = cost.as_secs_f64() / runs as f64;
            Some(RaceAbort {
                after_runs: done,
                p_value: mw.p_value,
                effect: mw.effect,
                saved: SimDuration::from_secs_f64(per_run * (planned - runs) as f64),
            })
        } else {
            None
        }
    }

    /// Two-sided Mann-Whitney comparison of two evaluations' samples.
    /// Returns `(p_value, effect)` where effect < 0.5 means `a` tends to be
    /// faster; `None` if either has no successful samples.
    pub fn compare(a: &Evaluation, b: &Evaluation) -> Option<(f64, f64)> {
        let xa: Vec<f64> = a.samples.iter().map(|s| s.as_secs_f64()).collect();
        let xb: Vec<f64> = b.samples.iter().map(|s| s.as_secs_f64()).collect();
        stats::mann_whitney_u(&xa, &xb).map(|m| (m.p_value, m.effect))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SimExecutor;
    use jtune_flags::{FlagValue, JvmConfig};
    use jtune_jvmsim::Workload;

    fn executor() -> SimExecutor {
        let mut w = Workload::baseline("proto-test");
        w.total_work = 3e8;
        SimExecutor::new(w)
    }

    #[test]
    fn evaluation_scores_by_median() {
        let ex = executor();
        let c = JvmConfig::default_for(ex.registry());
        let ev = Protocol {
            repeats: 5,
            fail_fast: true,
            ..Protocol::default()
        }
        .evaluate(&ex, &c, 42);
        assert!(ev.ok());
        assert!(!ev.aborted());
        assert_eq!(ev.samples.len(), 5);
        assert_eq!(ev.runs, 5);
        let mut times: Vec<f64> = ev.samples.iter().map(|s| s.as_secs_f64()).collect();
        times.sort_by(f64::total_cmp);
        assert!((ev.score.unwrap().as_secs_f64() - times[2]).abs() < 1e-9);
        // Cost exceeds the sum of run times (startup overhead).
        let run_sum: SimDuration = ev.samples.iter().copied().sum();
        assert!(ev.cost > run_sum);
    }

    #[test]
    fn failing_config_yields_no_score_and_fail_fast_saves_budget() {
        let mut w = Workload::baseline("oom");
        w.total_work = 3e8;
        w.live_set = 2e9;
        w.nursery_survival = 0.5;
        let ex = SimExecutor::new(w);
        let mut c = JvmConfig::default_for(ex.registry());
        c.set_by_name(ex.registry(), "MaxHeapSize", FlagValue::Int(64 << 20))
            .unwrap();
        let fast = Protocol {
            repeats: 5,
            fail_fast: true,
            ..Protocol::default()
        }
        .evaluate(&ex, &c, 1);
        assert!(!fast.ok());
        assert!(fast.error.is_some());
        assert_eq!(fast.error.as_ref().unwrap().kind(), "oom");
        let slow = Protocol {
            repeats: 5,
            fail_fast: false,
            ..Protocol::default()
        }
        .evaluate(&ex, &c, 1);
        assert!(!slow.ok());
        assert!(slow.cost >= fast.cost);
    }

    #[test]
    fn evaluation_is_deterministic_in_seed() {
        let ex = executor();
        let c = JvmConfig::default_for(ex.registry());
        let p = Protocol::default();
        let a = p.evaluate(&ex, &c, 9);
        let b = p.evaluate(&ex, &c, 9);
        assert_eq!(a.score, b.score);
        assert_eq!(a.samples, b.samples);
        let c2 = p.evaluate(&ex, &c, 10);
        assert_ne!(a.samples, c2.samples);
    }

    #[test]
    fn compare_distinguishes_clearly_different_configs() {
        let ex = executor();
        let p = Protocol {
            repeats: 6,
            fail_fast: true,
            ..Protocol::default()
        };
        let default = JvmConfig::default_for(ex.registry());
        let mut slow = default.clone();
        // Interpreter-only is drastically slower.
        slow.set_by_name(ex.registry(), "UseCompiler", FlagValue::Bool(false))
            .unwrap();
        let ev_fast = p.evaluate(&ex, &default, 1);
        let ev_slow = p.evaluate(&ex, &slow, 1);
        let (p_value, effect) = Protocol::compare(&ev_fast, &ev_slow).unwrap();
        assert!(p_value < 0.05, "p {p_value}");
        assert!(effect < 0.5);
    }

    #[test]
    fn repeats_zero_is_clamped_to_one() {
        let ex = executor();
        let c = JvmConfig::default_for(ex.registry());
        let ev = Protocol {
            repeats: 0,
            fail_fast: true,
            ..Protocol::default()
        }
        .evaluate(&ex, &c, 1);
        assert_eq!(ev.samples.len(), 1);
    }

    #[test]
    fn racing_aborts_a_hopeless_candidate_and_refunds_repeats() {
        let ex = executor();
        let p = Protocol {
            racing: Some(Racing::default()),
            ..Protocol::default()
        };
        let default = JvmConfig::default_for(ex.registry());
        let baseline_ev = p.evaluate(&ex, &default, 1);
        let baseline: Vec<f64> = baseline_ev
            .samples
            .iter()
            .map(|s| s.as_secs_f64())
            .collect();
        // Interpreter-only is several times slower: complete separation
        // after two runs, so racing must abort the third.
        let mut slow = default.clone();
        slow.set_by_name(ex.registry(), "UseCompiler", FlagValue::Bool(false))
            .unwrap();
        let raced = p.evaluate_raced(&ex, &slow, 2, Some(&baseline));
        assert!(raced.aborted());
        assert!(!raced.ok(), "raced-out candidates are censored");
        assert_eq!(raced.runs, 2);
        let abort = raced.raced.unwrap();
        assert_eq!(abort.after_runs, 2);
        assert!(abort.effect > 0.5);
        assert!(abort.saved > SimDuration::ZERO);
        // The refund is real: the raced evaluation cost less than a full one.
        let full = p.evaluate(&ex, &slow, 2);
        assert!(raced.cost < full.cost);
        assert_eq!(full.runs, 3);
    }

    #[test]
    fn racing_never_triggers_without_a_baseline_or_policy() {
        let ex = executor();
        let default = JvmConfig::default_for(ex.registry());
        let mut slow = default.clone();
        slow.set_by_name(ex.registry(), "UseCompiler", FlagValue::Bool(false))
            .unwrap();
        // Policy but no baseline.
        let p = Protocol {
            racing: Some(Racing::default()),
            ..Protocol::default()
        };
        assert!(!p.evaluate(&ex, &slow, 3).aborted());
        // Baseline but no policy.
        let base_ev = p.evaluate(&ex, &default, 1);
        let baseline: Vec<f64> = base_ev.samples.iter().map(|s| s.as_secs_f64()).collect();
        let no_policy = Protocol::default();
        assert!(!no_policy
            .evaluate_raced(&ex, &slow, 3, Some(&baseline))
            .aborted());
    }

    /// Executor whose first `failures` measure calls fail transiently.
    /// Protocol evaluation is sequential, so the failures land on the
    /// leading attempts deterministically.
    struct FlakyExecutor {
        inner: SimExecutor,
        failures: std::sync::atomic::AtomicU32,
        transient: bool,
    }

    impl FlakyExecutor {
        fn new(failures: u32, transient: bool) -> FlakyExecutor {
            FlakyExecutor {
                inner: executor(),
                failures: std::sync::atomic::AtomicU32::new(failures),
                transient,
            }
        }
    }

    impl Executor for FlakyExecutor {
        fn measure(&self, config: &JvmConfig, seed: u64) -> crate::executor::Measurement {
            let mut m = self.inner.measure(config, seed);
            let left = self
                .failures
                .fetch_update(
                    std::sync::atomic::Ordering::SeqCst,
                    std::sync::atomic::Ordering::SeqCst,
                    |n| n.checked_sub(1),
                )
                .is_ok();
            if left {
                m.error = Some(if self.transient {
                    TrialError::Crash("java exited with signal: 9 (SIGKILL)".into())
                } else {
                    TrialError::Crash("java exited with exit status: 134".into())
                });
            }
            m
        }

        fn registry(&self) -> &jtune_flags::Registry {
            self.inner.registry()
        }

        fn describe(&self) -> String {
            "flaky".into()
        }
    }

    #[test]
    fn retry_recovers_a_transient_failure_and_charges_backoff() {
        let ex = FlakyExecutor::new(1, true);
        let c = JvmConfig::default_for(ex.registry());
        let p = Protocol {
            retry: Some(RetryPolicy {
                max_retries: 2,
                backoff: 2.0,
            }),
            ..Protocol::default()
        };
        let ev = p.evaluate(&ex, &c, 42);
        assert!(ev.ok(), "{:?}", ev.error);
        assert_eq!(ev.runs, 3, "retries do not count as runs");
        assert_eq!(ev.samples.len(), 3);
        assert_eq!(ev.retried, 1);
        assert_eq!(ev.retry_log.len(), 1);
        let r = &ev.retry_log[0];
        assert_eq!((r.rep, r.attempt), (0, 0));
        assert!(r.error.is_transient());
        // The failed attempt was charged at the attempt-0 rate; a clean
        // evaluation of the same protocol costs less.
        let clean = p.evaluate(&FlakyExecutor::new(0, true), &c, 42);
        assert!(ev.cost > clean.cost);
        assert_eq!(clean.retried, 0);
        assert!(clean.retry_log.is_empty());
    }

    #[test]
    fn retry_budget_is_bounded_and_exhaustion_keeps_the_failure() {
        let ex = FlakyExecutor::new(10, true);
        let c = JvmConfig::default_for(ex.registry());
        let p = Protocol {
            retry: Some(RetryPolicy {
                max_retries: 2,
                backoff: 1.5,
            }),
            ..Protocol::default()
        };
        let ev = p.evaluate(&ex, &c, 7);
        assert!(!ev.ok());
        assert_eq!(ev.retried, 2, "bounded by max_retries");
        assert!(ev.error.unwrap().is_transient());
        assert_eq!(ev.runs, 1, "fail_fast still stops after the first run");
    }

    #[test]
    fn deterministic_failures_are_never_retried() {
        let ex = FlakyExecutor::new(1, false);
        let c = JvmConfig::default_for(ex.registry());
        let p = Protocol {
            retry: Some(RetryPolicy::default()),
            ..Protocol::default()
        };
        let ev = p.evaluate(&ex, &c, 7);
        assert!(!ev.ok());
        assert_eq!(ev.retried, 0);
    }

    #[test]
    fn retry_policy_backoff_grows_the_cost_factor() {
        let p = RetryPolicy {
            max_retries: 3,
            backoff: 1.5,
        };
        assert_eq!(p.cost_factor(0), 1.0);
        assert_eq!(p.cost_factor(1), 1.5);
        assert_eq!(p.cost_factor(2), 2.25);
        // Sub-1 backoff never discounts repeat work.
        let cheap = RetryPolicy {
            max_retries: 1,
            backoff: 0.5,
        };
        assert_eq!(cheap.cost_factor(3), 1.0);
    }

    #[test]
    fn retry_policy_leaves_clean_evaluations_bit_identical() {
        let ex = executor();
        let c = JvmConfig::default_for(ex.registry());
        let plain = Protocol::default().evaluate(&ex, &c, 11);
        let with_retry = Protocol {
            retry: Some(RetryPolicy::default()),
            ..Protocol::default()
        }
        .evaluate(&ex, &c, 11);
        assert_eq!(plain, with_retry);
    }

    #[test]
    fn backoff_policy_is_deterministic_capped_and_honours_hints() {
        let p = BackoffPolicy {
            seed: 42,
            ..BackoffPolicy::default()
        };
        // Pure function of (policy, attempt): same inputs, same delay.
        assert_eq!(p.delay_ms(0, None), p.delay_ms(0, None));
        // Jitter keeps every delay within [raw/2, raw], raw = base × 2^k.
        for attempt in 0..5 {
            let raw = (p.base_ms as f64 * p.retry.cost_factor(attempt)).min(p.cap_ms as f64);
            let d = p.delay_ms(attempt, None);
            assert!(d as f64 >= raw * 0.5 - 1.0, "attempt {attempt}: {d}");
            assert!(d <= p.cap_ms, "attempt {attempt}: {d}");
        }
        // A server hint is a floor, even above the jittered value.
        assert!(p.delay_ms(0, Some(4_000)) >= 4_000);
        // Different seeds de-synchronise the schedule.
        let q = BackoffPolicy {
            seed: 43,
            ..BackoffPolicy::default()
        };
        assert_ne!(
            (0..5).map(|a| p.delay_ms(a, None)).collect::<Vec<_>>(),
            (0..5).map(|a| q.delay_ms(a, None)).collect::<Vec<_>>()
        );
        // Retry budget comes from the embedded RetryPolicy.
        assert!(p.should_retry(0) && p.should_retry(4));
        assert!(!p.should_retry(5));
    }

    #[test]
    fn racing_spares_a_competitive_candidate() {
        let ex = executor();
        let p = Protocol {
            racing: Some(Racing::default()),
            ..Protocol::default()
        };
        let default = JvmConfig::default_for(ex.registry());
        let baseline_ev = p.evaluate(&ex, &default, 1);
        let baseline: Vec<f64> = baseline_ev
            .samples
            .iter()
            .map(|s| s.as_secs_f64())
            .collect();
        // The same configuration re-measured under a different seed is
        // statistically indistinguishable from the baseline: no abort.
        let ev = p.evaluate_raced(&ex, &default, 99, Some(&baseline));
        assert!(!ev.aborted());
        assert!(ev.ok());
        assert_eq!(ev.runs, 3);
    }
}
