//! The measurement protocol: repeats, medians, significance, racing.

use jtune_flags::JvmConfig;
use jtune_util::stats;
use jtune_util::SimDuration;

use crate::error::TrialError;
use crate::executor::{Executor, RunCounters};
use crate::objective::Objective;

/// Sequential early-termination ("racing") policy.
///
/// After [`Racing::min_repeats`] successful runs, the remaining repeats
/// of a candidate are skipped when a Mann-Whitney U test says its samples
/// are already significantly slower than the best-so-far baseline (p
/// below [`Racing::alpha`] with effect above 0.5). The unspent repeats
/// are never charged to the tuning budget — that refund is what lets the
/// same budget cover more distinct configurations.
///
/// The default (`min_repeats = 2`, `alpha = 0.2`) is deliberately
/// conservative at the paper's `repeats = 3` protocol: with only two
/// candidate samples against a three-sample baseline, the minimum
/// attainable p-value (~0.149) requires *complete separation* — both
/// candidate runs slower than every baseline run — and a candidate in
/// that position can no longer beat the baseline median regardless of
/// its final run, so the abort cannot discard a would-be winner.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Racing {
    /// Runs to complete before the first abort check (≥ 1).
    pub min_repeats: u32,
    /// Significance level an abort requires.
    pub alpha: f64,
}

impl Default for Racing {
    fn default() -> Self {
        Racing {
            min_repeats: 2,
            alpha: 0.2,
        }
    }
}

/// Details of a racing abort.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RaceAbort {
    /// Successful runs completed when the candidate was abandoned.
    pub after_runs: u32,
    /// Mann-Whitney p-value at the abort.
    pub p_value: f64,
    /// Mann-Whitney effect (above 0.5 = candidate slower than baseline).
    pub effect: f64,
    /// Estimated budget saved: unspent repeats × mean cost per run so far.
    pub saved: SimDuration,
}

/// How a candidate configuration is measured.
#[derive(Clone, Copy, Debug)]
pub struct Protocol {
    /// Runs per candidate. The paper runs each candidate a small fixed
    /// number of times within the budget; 3 is the default here.
    pub repeats: u32,
    /// Give up on a candidate after its first failed run (a crashed JVM
    /// will crash again; don't burn budget confirming it).
    pub fail_fast: bool,
    /// What the score optimises (default: run time, as in the paper).
    pub objective: Objective,
    /// Early-termination policy; `None` always burns all repeats (the
    /// paper's fixed-repeat protocol).
    pub racing: Option<Racing>,
}

impl Default for Protocol {
    fn default() -> Self {
        Protocol {
            repeats: 3,
            fail_fast: true,
            objective: Objective::Throughput,
            racing: None,
        }
    }
}

/// The scored result of measuring one candidate.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// Median objective value of the successful repeats (seconds for the
    /// throughput objective; lower is better). `None` when the candidate
    /// failed or was raced out.
    pub score: Option<SimDuration>,
    /// All successful per-run objective values, in run order.
    pub samples: Vec<SimDuration>,
    /// First classified failure, if any run failed.
    pub error: Option<TrialError>,
    /// Total budget cost: measured time of every run (including failed
    /// ones) plus fixed per-run overhead. Skipped repeats cost nothing.
    pub cost: SimDuration,
    /// VM activity counters summed across all runs (including failed
    /// ones), when the executor observes them.
    pub counters: Option<RunCounters>,
    /// Runs actually executed (≤ the protocol's repeat count).
    pub runs: u32,
    /// Set when racing abandoned the candidate early.
    pub raced: Option<RaceAbort>,
}

impl Evaluation {
    /// Did the candidate produce a score?
    pub fn ok(&self) -> bool {
        self.score.is_some()
    }

    /// Was the candidate abandoned by racing?
    pub fn aborted(&self) -> bool {
        self.raced.is_some()
    }
}

impl Protocol {
    /// Measure `config` `repeats` times through `executor`, deriving each
    /// run's noise seed from `base_seed`. Never races (no baseline).
    pub fn evaluate(
        &self,
        executor: &dyn Executor,
        config: &JvmConfig,
        base_seed: u64,
    ) -> Evaluation {
        self.evaluate_raced(executor, config, base_seed, None)
    }

    /// [`Protocol::evaluate`] with a racing baseline: when this protocol
    /// has a [`Racing`] policy and `baseline` holds the best-so-far
    /// samples (seconds), the candidate is abandoned as soon as it is
    /// statistically hopeless, refunding the unspent repeats.
    pub fn evaluate_raced(
        &self,
        executor: &dyn Executor,
        config: &JvmConfig,
        base_seed: u64,
        baseline: Option<&[f64]>,
    ) -> Evaluation {
        let planned = self.repeats.max(1);
        let mut samples = Vec::with_capacity(planned as usize);
        let mut cost = SimDuration::ZERO;
        let mut error = None;
        let mut counters: Option<RunCounters> = None;
        let mut runs: u32 = 0;
        let mut raced: Option<RaceAbort> = None;
        for rep in 0..planned {
            let seed = base_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(rep as u64);
            let m = executor.measure(config, seed);
            runs += 1;
            cost += m.time + executor.fixed_overhead();
            if let Some(c) = m.counters {
                let total = counters.get_or_insert_with(RunCounters::default);
                total.gc_pause_total += c.gc_pause_total;
                total.gc_collections += c.gc_collections;
                total.jit_compile_time += c.jit_compile_time;
                total.jit_compiles += c.jit_compiles;
            }
            match self.objective.score(&m) {
                Some(value) => samples.push(SimDuration::from_secs_f64(value)),
                None => {
                    error = m.error;
                    if self.fail_fast {
                        break;
                    }
                }
            }
            if let Some(abort) = self.race_check(baseline, &samples, error.is_some(), runs, cost) {
                raced = Some(abort);
                break;
            }
        }
        let score = if samples.is_empty() || error.is_some() || raced.is_some() {
            // A configuration that crashed even once is not trusted; a
            // raced-out candidate is censored (its partial median would
            // bias the record optimistically).
            None
        } else {
            let times: Vec<f64> = samples.iter().map(|s| s.as_secs_f64()).collect();
            Some(SimDuration::from_secs_f64(stats::median(&times)))
        };
        Evaluation {
            score,
            samples,
            error,
            cost,
            counters,
            runs,
            raced,
        }
    }

    /// Should the candidate be abandoned after its latest run?
    fn race_check(
        &self,
        baseline: Option<&[f64]>,
        samples: &[SimDuration],
        failed: bool,
        runs: u32,
        cost: SimDuration,
    ) -> Option<RaceAbort> {
        let racing = self.racing?;
        let baseline = baseline?;
        let planned = self.repeats.max(1);
        let done = samples.len() as u32;
        if failed || baseline.is_empty() || done < racing.min_repeats.max(1) || runs >= planned {
            return None;
        }
        let xs: Vec<f64> = samples.iter().map(|s| s.as_secs_f64()).collect();
        let mw = stats::mann_whitney_u(&xs, baseline)?;
        if mw.p_value < racing.alpha && mw.effect > 0.5 {
            let per_run = cost.as_secs_f64() / runs as f64;
            Some(RaceAbort {
                after_runs: done,
                p_value: mw.p_value,
                effect: mw.effect,
                saved: SimDuration::from_secs_f64(per_run * (planned - runs) as f64),
            })
        } else {
            None
        }
    }

    /// Two-sided Mann-Whitney comparison of two evaluations' samples.
    /// Returns `(p_value, effect)` where effect < 0.5 means `a` tends to be
    /// faster; `None` if either has no successful samples.
    pub fn compare(a: &Evaluation, b: &Evaluation) -> Option<(f64, f64)> {
        let xa: Vec<f64> = a.samples.iter().map(|s| s.as_secs_f64()).collect();
        let xb: Vec<f64> = b.samples.iter().map(|s| s.as_secs_f64()).collect();
        stats::mann_whitney_u(&xa, &xb).map(|m| (m.p_value, m.effect))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SimExecutor;
    use jtune_flags::{FlagValue, JvmConfig};
    use jtune_jvmsim::Workload;

    fn executor() -> SimExecutor {
        let mut w = Workload::baseline("proto-test");
        w.total_work = 3e8;
        SimExecutor::new(w)
    }

    #[test]
    fn evaluation_scores_by_median() {
        let ex = executor();
        let c = JvmConfig::default_for(ex.registry());
        let ev = Protocol {
            repeats: 5,
            fail_fast: true,
            ..Protocol::default()
        }
        .evaluate(&ex, &c, 42);
        assert!(ev.ok());
        assert!(!ev.aborted());
        assert_eq!(ev.samples.len(), 5);
        assert_eq!(ev.runs, 5);
        let mut times: Vec<f64> = ev.samples.iter().map(|s| s.as_secs_f64()).collect();
        times.sort_by(f64::total_cmp);
        assert!((ev.score.unwrap().as_secs_f64() - times[2]).abs() < 1e-9);
        // Cost exceeds the sum of run times (startup overhead).
        let run_sum: SimDuration = ev.samples.iter().copied().sum();
        assert!(ev.cost > run_sum);
    }

    #[test]
    fn failing_config_yields_no_score_and_fail_fast_saves_budget() {
        let mut w = Workload::baseline("oom");
        w.total_work = 3e8;
        w.live_set = 2e9;
        w.nursery_survival = 0.5;
        let ex = SimExecutor::new(w);
        let mut c = JvmConfig::default_for(ex.registry());
        c.set_by_name(ex.registry(), "MaxHeapSize", FlagValue::Int(64 << 20))
            .unwrap();
        let fast = Protocol {
            repeats: 5,
            fail_fast: true,
            ..Protocol::default()
        }
        .evaluate(&ex, &c, 1);
        assert!(!fast.ok());
        assert!(fast.error.is_some());
        assert_eq!(fast.error.as_ref().unwrap().kind(), "oom");
        let slow = Protocol {
            repeats: 5,
            fail_fast: false,
            ..Protocol::default()
        }
        .evaluate(&ex, &c, 1);
        assert!(!slow.ok());
        assert!(slow.cost >= fast.cost);
    }

    #[test]
    fn evaluation_is_deterministic_in_seed() {
        let ex = executor();
        let c = JvmConfig::default_for(ex.registry());
        let p = Protocol::default();
        let a = p.evaluate(&ex, &c, 9);
        let b = p.evaluate(&ex, &c, 9);
        assert_eq!(a.score, b.score);
        assert_eq!(a.samples, b.samples);
        let c2 = p.evaluate(&ex, &c, 10);
        assert_ne!(a.samples, c2.samples);
    }

    #[test]
    fn compare_distinguishes_clearly_different_configs() {
        let ex = executor();
        let p = Protocol {
            repeats: 6,
            fail_fast: true,
            ..Protocol::default()
        };
        let default = JvmConfig::default_for(ex.registry());
        let mut slow = default.clone();
        // Interpreter-only is drastically slower.
        slow.set_by_name(ex.registry(), "UseCompiler", FlagValue::Bool(false))
            .unwrap();
        let ev_fast = p.evaluate(&ex, &default, 1);
        let ev_slow = p.evaluate(&ex, &slow, 1);
        let (p_value, effect) = Protocol::compare(&ev_fast, &ev_slow).unwrap();
        assert!(p_value < 0.05, "p {p_value}");
        assert!(effect < 0.5);
    }

    #[test]
    fn repeats_zero_is_clamped_to_one() {
        let ex = executor();
        let c = JvmConfig::default_for(ex.registry());
        let ev = Protocol {
            repeats: 0,
            fail_fast: true,
            ..Protocol::default()
        }
        .evaluate(&ex, &c, 1);
        assert_eq!(ev.samples.len(), 1);
    }

    #[test]
    fn racing_aborts_a_hopeless_candidate_and_refunds_repeats() {
        let ex = executor();
        let p = Protocol {
            racing: Some(Racing::default()),
            ..Protocol::default()
        };
        let default = JvmConfig::default_for(ex.registry());
        let baseline_ev = p.evaluate(&ex, &default, 1);
        let baseline: Vec<f64> = baseline_ev
            .samples
            .iter()
            .map(|s| s.as_secs_f64())
            .collect();
        // Interpreter-only is several times slower: complete separation
        // after two runs, so racing must abort the third.
        let mut slow = default.clone();
        slow.set_by_name(ex.registry(), "UseCompiler", FlagValue::Bool(false))
            .unwrap();
        let raced = p.evaluate_raced(&ex, &slow, 2, Some(&baseline));
        assert!(raced.aborted());
        assert!(!raced.ok(), "raced-out candidates are censored");
        assert_eq!(raced.runs, 2);
        let abort = raced.raced.unwrap();
        assert_eq!(abort.after_runs, 2);
        assert!(abort.effect > 0.5);
        assert!(abort.saved > SimDuration::ZERO);
        // The refund is real: the raced evaluation cost less than a full one.
        let full = p.evaluate(&ex, &slow, 2);
        assert!(raced.cost < full.cost);
        assert_eq!(full.runs, 3);
    }

    #[test]
    fn racing_never_triggers_without_a_baseline_or_policy() {
        let ex = executor();
        let default = JvmConfig::default_for(ex.registry());
        let mut slow = default.clone();
        slow.set_by_name(ex.registry(), "UseCompiler", FlagValue::Bool(false))
            .unwrap();
        // Policy but no baseline.
        let p = Protocol {
            racing: Some(Racing::default()),
            ..Protocol::default()
        };
        assert!(!p.evaluate(&ex, &slow, 3).aborted());
        // Baseline but no policy.
        let base_ev = p.evaluate(&ex, &default, 1);
        let baseline: Vec<f64> = base_ev.samples.iter().map(|s| s.as_secs_f64()).collect();
        let no_policy = Protocol::default();
        assert!(!no_policy
            .evaluate_raced(&ex, &slow, 3, Some(&baseline))
            .aborted());
    }

    #[test]
    fn racing_spares_a_competitive_candidate() {
        let ex = executor();
        let p = Protocol {
            racing: Some(Racing::default()),
            ..Protocol::default()
        };
        let default = JvmConfig::default_for(ex.registry());
        let baseline_ev = p.evaluate(&ex, &default, 1);
        let baseline: Vec<f64> = baseline_ev
            .samples
            .iter()
            .map(|s| s.as_secs_f64())
            .collect();
        // The same configuration re-measured under a different seed is
        // statistically indistinguishable from the baseline: no abort.
        let ev = p.evaluate_raced(&ex, &default, 99, Some(&baseline));
        assert!(!ev.aborted());
        assert!(ev.ok());
        assert_eq!(ev.runs, 3);
    }
}
