//! Parallel candidate evaluation.
//!
//! The tuner proposes batches of candidate configurations; evaluating them
//! is embarrassingly parallel. This pool follows the hpc-parallel
//! guidance: scoped threads over an index-based work queue (no unsafe, no
//! channels needed for a finite batch), results written into per-slot
//! cells so the output order equals the input order, and noise seeds
//! derived from `(base_seed, candidate index)` — never from thread
//! identity — so a run is bit-identical whether evaluated on 1 worker or
//! 16.
//!
//! Telemetry obeys the same contract: workers never publish events
//! directly. Per-candidate events are buffered in the result slots and
//! flushed to the [`TelemetryBus`] in candidate order once the batch
//! joins, so a traced run's event stream is bit-identical at any worker
//! count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use jtune_flags::JvmConfig;
use jtune_telemetry::{TelemetryBus, TraceEvent};

use crate::executor::Executor;
use crate::protocol::{Evaluation, Protocol};

/// Evaluate every candidate with up to `workers` threads.
///
/// Returns evaluations in candidate order. `workers == 0` or `1` runs
/// inline (handy for debugging and deterministic profiling).
pub fn evaluate_batch(
    executor: &dyn Executor,
    protocol: Protocol,
    candidates: &[JvmConfig],
    base_seed: u64,
    workers: usize,
) -> Vec<Evaluation> {
    evaluate_batch_observed(executor, protocol, candidates, base_seed, workers, None)
}

/// [`evaluate_batch`] with telemetry: one [`TraceEvent::TrialMeasured`]
/// per candidate is emitted on `bus`, always in candidate order.
///
/// Workers buffer their event payloads in the per-slot cells; the flush
/// happens here, after the batch joins, so the stream on `bus` does not
/// depend on thread scheduling or worker count.
pub fn evaluate_batch_observed(
    executor: &dyn Executor,
    protocol: Protocol,
    candidates: &[JvmConfig],
    base_seed: u64,
    workers: usize,
    bus: Option<&TelemetryBus>,
) -> Vec<Evaluation> {
    let seed_for = |i: usize| -> u64 { base_seed ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407) };
    let evals: Vec<Evaluation> = if workers <= 1 || candidates.len() <= 1 {
        candidates
            .iter()
            .enumerate()
            .map(|(i, c)| protocol.evaluate(executor, c, seed_for(i)))
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Evaluation>>> =
            candidates.iter().map(|_| Mutex::new(None)).collect();
        let workers = workers.min(candidates.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= candidates.len() {
                        break;
                    }
                    let ev = protocol.evaluate(executor, &candidates[i], seed_for(i));
                    *slots[i].lock().expect("slot poisoned") = Some(ev);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("slot poisoned")
                    .expect("slot unfilled")
            })
            .collect()
    };
    if let Some(bus) = bus {
        for (slot, ev) in evals.iter().enumerate() {
            bus.emit(&TraceEvent::TrialMeasured {
                slot,
                repeat_secs: ev.samples.iter().map(|s| s.as_secs_f64()).collect(),
                cost_secs: ev.cost.as_secs_f64(),
                error: ev.error.clone(),
            });
        }
    }
    evals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SimExecutor;
    use jtune_flags::{FlagValue, JvmConfig};
    use jtune_jvmsim::Workload;

    fn executor() -> SimExecutor {
        let mut w = Workload::baseline("pool-test");
        w.total_work = 2e8;
        SimExecutor::new(w)
    }

    fn candidates(ex: &SimExecutor, n: usize) -> Vec<JvmConfig> {
        let r = ex.registry();
        (0..n)
            .map(|i| {
                let mut c = JvmConfig::default_for(r);
                c.set_by_name(r, "CompileThreshold", FlagValue::Int(1000 + 500 * i as i64))
                    .unwrap();
                c
            })
            .collect()
    }

    #[test]
    fn parallel_equals_sequential() {
        let ex = executor();
        let cs = candidates(&ex, 12);
        let p = Protocol::default();
        let seq = evaluate_batch(&ex, p, &cs, 7, 1);
        let par = evaluate_batch(&ex, p, &cs, 7, 8);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.score, b.score, "parallel result diverged");
            assert_eq!(a.samples, b.samples);
        }
    }

    #[test]
    fn results_in_candidate_order() {
        let ex = executor();
        let cs = candidates(&ex, 6);
        let evs = evaluate_batch(&ex, Protocol::default(), &cs, 3, 4);
        // Re-evaluate each candidate individually and match by seed.
        for (i, c) in cs.iter().enumerate() {
            let seed = 3u64 ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407);
            let solo = Protocol::default().evaluate(&ex, c, seed);
            assert_eq!(evs[i].score, solo.score, "slot {i} out of order");
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let ex = executor();
        let evs = evaluate_batch(&ex, Protocol::default(), &[], 1, 8);
        assert!(evs.is_empty());
    }

    #[test]
    fn single_candidate_runs_inline() {
        let ex = executor();
        let cs = candidates(&ex, 1);
        let evs = evaluate_batch(&ex, Protocol::default(), &cs, 5, 8);
        assert_eq!(evs.len(), 1);
        assert!(evs[0].ok());
    }
}
