//! Parallel candidate evaluation.
//!
//! The tuner proposes batches of candidate configurations; evaluating them
//! is embarrassingly parallel. This pool follows the hpc-parallel
//! guidance: scoped threads over an index-based work queue (no unsafe, no
//! channels needed for a finite batch), results written into per-slot
//! cells so the output order equals the input order, and noise seeds
//! derived from `(base_seed, candidate index)` — never from thread
//! identity — so a run is bit-identical whether evaluated on 1 worker or
//! 16.
//!
//! Telemetry obeys the same contract: workers never publish events
//! directly. Per-candidate events are buffered in the result slots and
//! flushed to the [`TelemetryBus`] in candidate order once the batch
//! joins, so a traced run's event stream is bit-identical at any worker
//! count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use jtune_flags::JvmConfig;
use jtune_telemetry::{TelemetryBus, TraceEvent};

use crate::executor::Executor;
use crate::protocol::{Evaluation, Protocol};

/// The slot-index → noise-seed derivation shared by every evaluation
/// path. A candidate's seed depends only on `(base_seed, slot)`, so a
/// batch where some slots are served from cache still measures the
/// remaining slots with exactly the seeds a full batch would have used.
pub(crate) fn seed_for(base_seed: u64, slot: usize) -> u64 {
    base_seed ^ (slot as u64).wrapping_mul(0xA24B_AED4_963E_E407)
}

/// Evaluate every candidate with up to `workers` threads, emitting one
/// [`TraceEvent::TrialMeasured`] per candidate on `bus`, always in
/// candidate order.
///
/// Returns evaluations in candidate order. `workers == 0` or `1` runs
/// inline (handy for debugging and deterministic profiling). Pass
/// [`TelemetryBus::disabled`] to run unobserved.
///
/// Workers buffer their results in per-slot cells; the event flush
/// happens here, after the batch joins, so the stream on `bus` does not
/// depend on thread scheduling or worker count.
pub fn evaluate_batch(
    executor: &dyn Executor,
    protocol: Protocol,
    candidates: &[JvmConfig],
    base_seed: u64,
    workers: usize,
    bus: &TelemetryBus,
) -> Vec<Evaluation> {
    let all: Vec<usize> = (0..candidates.len()).collect();
    let timed = run_selected(
        executor, protocol, candidates, &all, base_seed, workers, None,
    );
    let evals: Vec<Evaluation> = timed.into_iter().map(|(ev, _)| ev).collect();
    if bus.is_enabled() {
        for (slot, ev) in evals.iter().enumerate() {
            emit_measured(bus, slot, ev);
        }
    }
    evals
}

/// Emit the slot-level trace events for one completed evaluation: one
/// [`TraceEvent::TrialRetried`] per retried attempt (they happened during
/// the measurement), then the [`TraceEvent::TrialMeasured`] record, then
/// [`TraceEvent::TrialAborted`] if racing abandoned the candidate. A
/// retry-free evaluation emits exactly the pre-fault-tolerance stream.
pub(crate) fn emit_measured(bus: &TelemetryBus, slot: usize, ev: &Evaluation) {
    for r in &ev.retry_log {
        bus.emit(&TraceEvent::TrialRetried {
            slot,
            rep: r.rep as u64,
            attempt: r.attempt as u64,
            error: r.error.message().to_string(),
            error_kind: r.error.kind().to_string(),
            cost_secs: r.cost.as_secs_f64(),
        });
    }
    bus.emit(&TraceEvent::TrialMeasured {
        slot,
        repeat_secs: ev.samples.iter().map(|s| s.as_secs_f64()).collect(),
        cost_secs: ev.cost.as_secs_f64(),
        error: ev.error.as_ref().map(|e| e.message().to_string()),
        error_kind: ev.error.as_ref().map(|e| e.kind().to_string()),
    });
    if let Some(abort) = ev.raced {
        bus.emit(&TraceEvent::TrialAborted {
            slot,
            after_runs: abort.after_runs as u64,
            p_value: abort.p_value,
            effect: abort.effect,
            saved_secs: abort.saved.as_secs_f64(),
        });
    }
}

/// Evaluate only the slots in `selected` (e.g. the cache misses of a
/// batch), in parallel, returning evaluations in `selected` order paired
/// with each slot's wall-clock evaluation time in seconds (real elapsed
/// time on its worker thread — observability only, never part of the
/// deterministic result). Each slot keeps its canonical
/// `(base_seed, slot)` noise seed. `baseline` is the racing baseline
/// forwarded to [`Protocol::evaluate_raced`] — the same frozen slice for
/// every slot, so racing decisions are independent of worker scheduling.
pub(crate) fn run_selected(
    executor: &dyn Executor,
    protocol: Protocol,
    candidates: &[JvmConfig],
    selected: &[usize],
    base_seed: u64,
    workers: usize,
    baseline: Option<&[f64]>,
) -> Vec<(Evaluation, f64)> {
    if workers <= 1 || selected.len() <= 1 {
        return selected
            .iter()
            .map(|&i| {
                let start = Instant::now();
                let ev = protocol.evaluate_raced(
                    executor,
                    &candidates[i],
                    seed_for(base_seed, i),
                    baseline,
                );
                (ev, start.elapsed().as_secs_f64())
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<(Evaluation, f64)>>> =
        selected.iter().map(|_| Mutex::new(None)).collect();
    let workers = workers.min(selected.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= selected.len() {
                    break;
                }
                let i = selected[k];
                let start = Instant::now();
                let ev = protocol.evaluate_raced(
                    executor,
                    &candidates[i],
                    seed_for(base_seed, i),
                    baseline,
                );
                let wall = start.elapsed().as_secs_f64();
                // A panicking sibling poisons the mutex but not the data:
                // recover rather than cascading the panic into the daemon.
                *slots[k].lock().unwrap_or_else(|p| p.into_inner()) = Some((ev, wall));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .expect("slot unfilled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SimExecutor;
    use jtune_flags::{FlagValue, JvmConfig};
    use jtune_jvmsim::Workload;

    fn executor() -> SimExecutor {
        let mut w = Workload::baseline("pool-test");
        w.total_work = 2e8;
        SimExecutor::new(w)
    }

    fn candidates(ex: &SimExecutor, n: usize) -> Vec<JvmConfig> {
        let r = ex.registry();
        (0..n)
            .map(|i| {
                let mut c = JvmConfig::default_for(r);
                c.set_by_name(r, "CompileThreshold", FlagValue::Int(1000 + 500 * i as i64))
                    .unwrap();
                c
            })
            .collect()
    }

    #[test]
    fn parallel_equals_sequential() {
        let ex = executor();
        let cs = candidates(&ex, 12);
        let p = Protocol::default();
        let bus = TelemetryBus::disabled();
        let seq = evaluate_batch(&ex, p, &cs, 7, 1, &bus);
        let par = evaluate_batch(&ex, p, &cs, 7, 8, &bus);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.score, b.score, "parallel result diverged");
            assert_eq!(a.samples, b.samples);
        }
    }

    #[test]
    fn results_in_candidate_order() {
        let ex = executor();
        let cs = candidates(&ex, 6);
        let evs = evaluate_batch(
            &ex,
            Protocol::default(),
            &cs,
            3,
            4,
            &TelemetryBus::disabled(),
        );
        // Re-evaluate each candidate individually and match by seed.
        for (i, c) in cs.iter().enumerate() {
            let solo = Protocol::default().evaluate(&ex, c, seed_for(3, i));
            assert_eq!(evs[i].score, solo.score, "slot {i} out of order");
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let ex = executor();
        let evs = evaluate_batch(
            &ex,
            Protocol::default(),
            &[],
            1,
            8,
            &TelemetryBus::disabled(),
        );
        assert!(evs.is_empty());
    }

    #[test]
    fn single_candidate_runs_inline() {
        let ex = executor();
        let cs = candidates(&ex, 1);
        let evs = evaluate_batch(
            &ex,
            Protocol::default(),
            &cs,
            5,
            8,
            &TelemetryBus::disabled(),
        );
        assert_eq!(evs.len(), 1);
        assert!(evs[0].ok());
    }

    #[test]
    fn run_selected_preserves_per_slot_seeds() {
        let ex = executor();
        let cs = candidates(&ex, 8);
        let all: Vec<usize> = (0..cs.len()).collect();
        let full = run_selected(&ex, Protocol::default(), &cs, &all, 11, 4, None);
        // Evaluating only a subset must reproduce the full batch's
        // results for those slots bit-for-bit.
        let subset = [1usize, 4, 6];
        let partial = run_selected(&ex, Protocol::default(), &cs, &subset, 11, 4, None);
        for (k, &i) in subset.iter().enumerate() {
            assert_eq!(
                partial[k].0.samples, full[i].0.samples,
                "slot {i} seed drifted"
            );
        }
    }

    #[test]
    fn run_selected_reports_nonnegative_wall_times() {
        let ex = executor();
        let cs = candidates(&ex, 4);
        let all: Vec<usize> = (0..cs.len()).collect();
        for workers in [1, 4] {
            let timed = run_selected(&ex, Protocol::default(), &cs, &all, 2, workers, None);
            assert_eq!(timed.len(), cs.len());
            for (_, wall) in &timed {
                assert!(wall.is_finite() && *wall >= 0.0);
            }
        }
    }
}
