//! Cross-session measurement memoization.
//!
//! A multi-session service (see the `jtune-server` crate) runs many
//! tuning sessions against the same workloads, and different sessions —
//! or one session resumed many times — keep re-measuring the same
//! `(configuration, noise seed)` points. For the simulator-backed
//! executor a measurement is a *pure function* of `(config, seed)`
//! (see [`Executor`]'s determinism contract), so a shared memo can
//! serve the identical [`Measurement`] a live run would produce —
//! byte-for-byte — which means memoization is completely invisible to
//! the per-session trace-determinism guarantee: a session gets the same
//! trace whether its runs were measured live or served from another
//! session's work.
//!
//! This is deliberately a *different layer* than [`crate::cache`]'s
//! [`crate::TrialCache`]: the trial cache memoizes whole protocol
//! evaluations *within* one session keyed by fingerprint alone (same
//! session ⇒ same seeds), and serving a hit changes the session's budget
//! accounting — it is a visible, budget-stretching feature. The
//! measurement memo keys on `(tag, fingerprint, seed)` so it can be
//! shared across sessions with different seeds while never changing any
//! observable number; hits only save host (wall-clock) time.
//!
//! Do **not** wrap a [`crate::ProcessExecutor`] in a [`MemoExecutor`]:
//! real JVM runs are not pure functions of their seed, and replaying one
//! observation as if it were a fresh sample would silently narrow the
//! measured distribution.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use jtune_flags::{JvmConfig, Registry};
use jtune_util::SimDuration;

use crate::executor::{Executor, Measurement};

/// A shared, thread-safe memo of executor measurements, keyed by
/// `(executor tag, configuration fingerprint, noise seed)`.
///
/// Wrap it in an `Arc` and hand a clone to one [`MemoExecutor`] per
/// session. The map grows for the lifetime of the cache;
/// [`MeasurementCache::len`] reports the footprint so an owner can
/// decide when to drop and rebuild it.
#[derive(Debug, Default)]
pub struct MeasurementCache {
    entries: Mutex<HashMap<(u64, u64, u64), Measurement>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Stable key half for one executor: distinct workloads (or fault plans)
/// must never share entries, so the executor's `describe()` string is
/// hashed into every key.
fn tag_of(describe: &str) -> u64 {
    // FNV-1a: stable across runs (no RandomState), cheap, good enough
    // for a cache key that is also compared on the full fingerprint.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in describe.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl MeasurementCache {
    /// Empty shared cache.
    pub fn new() -> MeasurementCache {
        MeasurementCache::default()
    }

    /// Look up a prior measurement. Counts a global hit or miss.
    pub fn lookup(&self, tag: u64, fingerprint: u64, seed: u64) -> Option<Measurement> {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let found = entries.get(&(tag, fingerprint, seed)).cloned();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Record a measurement (first insert wins, like the trial cache, so
    /// a cached answer never changes under a reader).
    pub fn insert(&self, tag: u64, fingerprint: u64, seed: u64, measurement: Measurement) {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry((tag, fingerprint, seed))
            .or_insert(measurement);
    }

    /// Distinct `(tag, fingerprint, seed)` points stored.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hits served across every attached executor.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses (live measurements) across every attached executor.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// An [`Executor`] wrapper that serves runs from a shared
/// [`MeasurementCache`] when possible and measures (then records) them
/// otherwise. Each wrapper keeps its own hit/miss counters so a
/// multi-session owner can surface per-session savings.
///
/// `describe()`, `registry()` and `fixed_overhead()` delegate to the
/// inner executor — a memoized session is indistinguishable from a live
/// one in every record it produces.
pub struct MemoExecutor<E> {
    inner: E,
    cache: std::sync::Arc<MeasurementCache>,
    tag: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<E: Executor> MemoExecutor<E> {
    /// Wrap `inner`, sharing `cache` with any other sessions holding it.
    pub fn new(inner: E, cache: std::sync::Arc<MeasurementCache>) -> MemoExecutor<E> {
        let tag = tag_of(&inner.describe());
        MemoExecutor {
            inner,
            cache,
            tag,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Runs this wrapper served from the shared cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Runs this wrapper measured live (and recorded).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The shared cache backing this wrapper.
    pub fn cache(&self) -> &std::sync::Arc<MeasurementCache> {
        &self.cache
    }
}

impl<E: Executor> Executor for MemoExecutor<E> {
    fn measure(&self, config: &JvmConfig, seed: u64) -> Measurement {
        let fingerprint = config.fingerprint();
        if let Some(prior) = self.cache.lookup(self.tag, fingerprint, seed) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return prior;
        }
        let measured = self.inner.measure(config, seed);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.cache
            .insert(self.tag, fingerprint, seed, measured.clone());
        measured
    }

    fn registry(&self) -> &Registry {
        self.inner.registry()
    }

    fn fixed_overhead(&self) -> SimDuration {
        self.inner.fixed_overhead()
    }

    fn describe(&self) -> String {
        self.inner.describe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SimExecutor;
    use jtune_jvmsim::Workload;
    use std::sync::Arc;

    fn executor(name: &str) -> SimExecutor {
        let mut w = Workload::baseline(name);
        w.total_work = 2e8;
        SimExecutor::new(w)
    }

    #[test]
    fn memo_returns_byte_identical_measurements() {
        let cache = Arc::new(MeasurementCache::new());
        let raw = executor("memo-test");
        let memo = MemoExecutor::new(executor("memo-test"), cache.clone());
        let c = JvmConfig::default_for(raw.registry());
        let live = raw.measure(&c, 9);
        let first = memo.measure(&c, 9); // miss: measured + recorded
        let second = memo.measure(&c, 9); // hit: served from the memo
        for m in [&first, &second] {
            assert_eq!(m.time, live.time);
            assert_eq!(m.pause_p99, live.pause_p99);
            assert_eq!(m.counters, live.counters);
            assert!(m.error.is_none());
        }
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn sessions_share_but_seeds_and_workloads_do_not_collide() {
        let cache = Arc::new(MeasurementCache::new());
        let a = MemoExecutor::new(executor("memo-a"), cache.clone());
        let b = MemoExecutor::new(executor("memo-a"), cache.clone());
        let other = MemoExecutor::new(executor("memo-b"), cache.clone());
        let c = JvmConfig::default_for(a.registry());
        a.measure(&c, 1);
        // Same workload + same seed: session B hits session A's work.
        b.measure(&c, 1);
        assert_eq!(b.hits(), 1);
        // A different seed is a different measurement point.
        b.measure(&c, 2);
        assert_eq!(b.misses(), 1);
        // A different workload must never share entries.
        other.measure(&c, 1);
        assert_eq!(other.hits(), 0);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn delegated_metadata_is_indistinguishable_from_the_inner_executor() {
        let cache = Arc::new(MeasurementCache::new());
        let raw = executor("memo-meta");
        let memo = MemoExecutor::new(executor("memo-meta"), cache);
        assert_eq!(memo.describe(), raw.describe());
        assert_eq!(memo.fixed_overhead(), raw.fixed_overhead());
    }
}
