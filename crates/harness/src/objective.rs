//! Tuning objectives.
//!
//! The paper tunes for run time. Production JVM tuning often optimises
//! *pause times* instead (or a blend) — the same search machinery applies,
//! only the candidate score changes. [`Objective`] maps a [`Measurement`]
//! to a lower-is-better score:
//!
//! - [`Objective::Throughput`] — total run time in seconds (the paper).
//! - [`Objective::PausePercentile`] — the p-th percentile GC pause in
//!   milliseconds. Latency tuning: a configuration that runs slightly
//!   longer but never stops the world for 200 ms wins.
//! - [`Objective::Weighted`] — run time inflated by a pause penalty, for
//!   "throughput, but don't wreck my tail latency" service-level goals.
//!
//! Executors that cannot observe pauses (a real `java` process without GC
//! log parsing) report no pause data; pause-based objectives then fall
//! back to throughput so the tuner degrades gracefully rather than
//! failing every candidate.

use crate::executor::Measurement;

/// What the tuner minimises.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum Objective {
    /// Total run time, seconds (the paper's objective).
    #[default]
    Throughput,
    /// p-th percentile stop-the-world pause, milliseconds.
    PausePercentile(f64),
    /// `run_time × (1 + weight × pause_ms / 100)`: each 100 ms of p-th
    /// percentile pause costs `weight ×` the run time.
    Weighted {
        /// Pause percentile consulted.
        percentile: f64,
        /// Penalty weight per 100 ms of pause.
        weight: f64,
    },
}

impl Objective {
    /// Score a successful measurement (lower is better). Returns `None`
    /// only for failed measurements.
    pub fn score(&self, m: &Measurement) -> Option<f64> {
        if m.error.is_some() {
            return None;
        }
        let time_secs = m.time.as_secs_f64();
        let pause_ms = m.pause_p99_ms();
        Some(match self {
            Objective::Throughput => time_secs,
            Objective::PausePercentile(_) => match pause_ms {
                Some(p) => p.max(0.001),
                // No pause data: degrade to throughput.
                None => time_secs,
            },
            Objective::Weighted { weight, .. } => match pause_ms {
                Some(p) => time_secs * (1.0 + weight * p / 100.0),
                None => time_secs,
            },
        })
    }

    /// The pause percentile this objective needs measured, if any.
    pub fn wanted_percentile(&self) -> Option<f64> {
        match self {
            Objective::Throughput => None,
            Objective::PausePercentile(p) => Some(*p),
            Objective::Weighted { percentile, .. } => Some(*percentile),
        }
    }

    /// Short label for reports.
    pub fn name(&self) -> String {
        match self {
            Objective::Throughput => "throughput".to_string(),
            Objective::PausePercentile(p) => format!("pause-p{p:.0}"),
            Objective::Weighted { percentile, weight } => {
                format!("weighted(p{percentile:.0},w={weight})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtune_util::SimDuration;

    fn measurement(secs: f64, pause_ms: Option<f64>) -> Measurement {
        Measurement {
            time: SimDuration::from_secs_f64(secs),
            pause_p99: pause_ms.map(SimDuration::from_millis_f64),
            error: None,
            counters: None,
        }
    }

    #[test]
    fn throughput_scores_time() {
        let m = measurement(12.5, Some(80.0));
        assert_eq!(Objective::Throughput.score(&m), Some(12.5));
    }

    #[test]
    fn pause_objective_prefers_short_pauses_over_short_runs() {
        let fast_but_pausy = measurement(10.0, Some(400.0));
        let slow_but_smooth = measurement(12.0, Some(15.0));
        let o = Objective::PausePercentile(99.0);
        assert!(o.score(&slow_but_smooth).unwrap() < o.score(&fast_but_pausy).unwrap());
    }

    #[test]
    fn weighted_blends_both() {
        let o = Objective::Weighted {
            percentile: 99.0,
            weight: 0.5,
        };
        // 10 s with 200 ms pauses → 10 × (1 + 0.5×2) = 20.
        assert!((o.score(&measurement(10.0, Some(200.0))).unwrap() - 20.0).abs() < 1e-9);
        // 14 s with 10 ms pauses → 14.7: the smooth config wins.
        assert!(o.score(&measurement(14.0, Some(10.0))).unwrap() < 20.0);
    }

    #[test]
    fn missing_pause_data_degrades_to_throughput() {
        let m = measurement(9.0, None);
        assert_eq!(Objective::PausePercentile(99.0).score(&m), Some(9.0));
        assert_eq!(
            Objective::Weighted {
                percentile: 99.0,
                weight: 1.0
            }
            .score(&m),
            Some(9.0)
        );
    }

    #[test]
    fn failures_score_none() {
        let m = Measurement {
            time: SimDuration::from_secs(1),
            pause_p99: None,
            error: Some(crate::error::TrialError::classify("boom")),
            counters: None,
        };
        assert_eq!(Objective::Throughput.score(&m), None);
    }

    #[test]
    fn names_render() {
        assert_eq!(Objective::Throughput.name(), "throughput");
        assert_eq!(Objective::PausePercentile(99.0).name(), "pause-p99");
        assert!(Objective::Weighted {
            percentile: 95.0,
            weight: 0.5
        }
        .name()
        .contains("p95"));
    }
}
