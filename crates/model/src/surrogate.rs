//! The incremental surrogate regressor.
//!
//! A small bagged ensemble of regression trees plus one ridge-regularised
//! linear member, refit from scratch on every `fit()` call from the full
//! observation history. Refitting from scratch is what makes resume work:
//! the model is a pure function of `(seed, observation sequence)`, so a
//! session that replays its journal rebuilds bit-identical predictions.
//!
//! Each bag draws its own bootstrap sample and its own per-split feature
//! subset from an RNG seeded by `seed ^ bag`, so the ensemble spread is a
//! real disagreement signal, not noise from shared state.

use jtune_util::{Rng, SplitMix64, Xoshiro256pp};

/// Bootstrap bags in the tree ensemble.
const BAGS: usize = 8;
/// Maximum tree depth.
const MAX_DEPTH: usize = 6;
/// Minimum samples on each side of a split.
const MIN_LEAF: usize = 4;
/// Candidate split thresholds examined per feature.
const MAX_THRESHOLDS: usize = 8;
/// Features the linear member regresses on (top by |covariance|).
const LINEAR_TOP_K: usize = 16;
/// Ridge penalty for the linear member.
const RIDGE: f64 = 1e-3;

/// A surrogate's point estimate plus ensemble disagreement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prediction {
    /// Ensemble-mean predicted score (virtual seconds; lower is better).
    pub mean: f64,
    /// Population std-dev across ensemble members.
    pub std: f64,
}

/// What one `fit()` call did.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FitReport {
    /// Observations the current model is trained on.
    pub samples: usize,
    /// Whether this call actually refit (false: nothing new to learn).
    pub refit: bool,
}

/// Seeded bagged-tree + linear surrogate over encoded configs.
#[derive(Clone, Debug)]
pub struct Surrogate {
    seed: u64,
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    trees: Vec<Tree>,
    linear: Option<LinearModel>,
    fitted_at: usize,
    fits: u64,
}

impl Surrogate {
    /// An empty surrogate. `seed` fixes every future fit.
    pub fn new(seed: u64) -> Surrogate {
        Surrogate {
            seed,
            xs: Vec::new(),
            ys: Vec::new(),
            trees: Vec::new(),
            linear: None,
            fitted_at: 0,
            fits: 0,
        }
    }

    /// Record one completed trial. Non-finite scores are dropped — the
    /// retry/quarantine layer already decides what failures mean.
    pub fn observe(&mut self, x: Vec<f64>, y: f64) {
        if y.is_finite() {
            self.xs.push(x);
            self.ys.push(y);
        }
    }

    /// Observations recorded so far.
    pub fn samples(&self) -> usize {
        self.xs.len()
    }

    /// Refits completed so far.
    pub fn fits(&self) -> u64 {
        self.fits
    }

    /// Whether the model has seen enough trials to screen.
    pub fn ready(&self, warmup: usize) -> bool {
        self.xs.len() >= warmup
    }

    /// Refit from the full history if anything new arrived.
    pub fn fit(&mut self) -> FitReport {
        if self.xs.len() == self.fitted_at {
            return FitReport {
                samples: self.fitted_at,
                refit: false,
            };
        }
        self.trees = (0..BAGS)
            .map(|bag| {
                let mut rng =
                    Xoshiro256pp::seed_from_u64(SplitMix64::new(self.seed ^ bag as u64).next_u64());
                Tree::grow(&self.xs, &self.ys, &mut rng)
            })
            .collect();
        self.linear = LinearModel::fit(&self.xs, &self.ys);
        self.fitted_at = self.xs.len();
        self.fits += 1;
        FitReport {
            samples: self.fitted_at,
            refit: true,
        }
    }

    /// Predict the score of an encoded config.
    ///
    /// # Panics
    /// Panics if called before the first successful [`fit`](Self::fit).
    pub fn predict(&self, x: &[f64]) -> Prediction {
        assert!(!self.trees.is_empty(), "predict() before fit()");
        let mut members: Vec<f64> = self.trees.iter().map(|t| t.predict(x)).collect();
        if let Some(linear) = &self.linear {
            members.push(linear.predict(x));
        }
        let n = members.len() as f64;
        let mean = members.iter().sum::<f64>() / n;
        let var = members.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>() / n;
        Prediction {
            mean,
            std: var.sqrt(),
        }
    }
}

/// One regression tree, stored as a flat arena.
#[derive(Clone, Debug)]
struct Tree {
    nodes: Vec<Node>,
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

impl Tree {
    /// Grow a tree on a bootstrap sample drawn from `rng`.
    fn grow(xs: &[Vec<f64>], ys: &[f64], rng: &mut impl Rng) -> Tree {
        let n = xs.len();
        let sample: Vec<usize> = (0..n).map(|_| rng.next_below(n as u64) as usize).collect();
        let mut tree = Tree { nodes: Vec::new() };
        tree.grow_node(xs, ys, sample, 0, rng);
        tree
    }

    /// Build the subtree over `idx`, returning its node index.
    fn grow_node(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[f64],
        idx: Vec<usize>,
        depth: usize,
        rng: &mut impl Rng,
    ) -> usize {
        let mean = idx.iter().map(|&i| ys[i]).sum::<f64>() / idx.len() as f64;
        let spread = idx
            .iter()
            .map(|&i| (ys[i] - mean) * (ys[i] - mean))
            .sum::<f64>();
        if depth >= MAX_DEPTH || idx.len() < 2 * MIN_LEAF || spread <= f64::EPSILON {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }

        let dim = xs[0].len();
        let tries = ((dim as f64).sqrt().ceil() as usize).max(1);
        let mut best: Option<(f64, usize, f64)> = None; // (sse, feature, threshold)
        for _ in 0..tries {
            let feature = rng.next_below(dim as u64) as usize;
            if let Some((sse, threshold)) = best_split(xs, ys, &idx, feature) {
                if best.map(|(b, _, _)| sse < b).unwrap_or(true) {
                    best = Some((sse, feature, threshold));
                }
            }
        }
        let Some((_, feature, threshold)) = best else {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        };

        let (lo, hi): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| xs[i][feature] <= threshold);
        if lo.len() < MIN_LEAF || hi.len() < MIN_LEAF {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }

        // Reserve this node's slot before recursing so the arena index
        // is stable.
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean });
        let left = self.grow_node(xs, ys, lo, depth + 1, rng);
        let right = self.grow_node(xs, ys, hi, depth + 1, rng);
        self.nodes[slot] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }

    fn predict(&self, x: &[f64]) -> f64 {
        let mut at = 0;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if x.get(*feature).copied().unwrap_or(0.5) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// The lowest-SSE threshold for one feature over `idx`, if it has any
/// split that leaves `MIN_LEAF` samples on both sides.
fn best_split(xs: &[Vec<f64>], ys: &[f64], idx: &[usize], feature: usize) -> Option<(f64, f64)> {
    let mut pairs: Vec<(f64, f64)> = idx.iter().map(|&i| (xs[i][feature], ys[i])).collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let n = pairs.len();

    // Prefix sums of y and y^2 allow O(1) SSE at every cut point.
    let mut sum = vec![0.0; n + 1];
    let mut sq = vec![0.0; n + 1];
    for (i, &(_, y)) in pairs.iter().enumerate() {
        sum[i + 1] = sum[i] + y;
        sq[i + 1] = sq[i] + y * y;
    }
    let sse = |a: usize, b: usize| -> f64 {
        let m = (b - a) as f64;
        let s = sum[b] - sum[a];
        (sq[b] - sq[a]) - s * s / m
    };

    // Cut points between distinct adjacent values, thinned to a cap.
    let cuts: Vec<usize> = (MIN_LEAF..=n - MIN_LEAF)
        .filter(|&k| pairs[k - 1].0 < pairs[k].0)
        .collect();
    if cuts.is_empty() {
        return None;
    }
    let stride = cuts.len().div_ceil(MAX_THRESHOLDS);
    let mut best: Option<(f64, f64)> = None;
    for &k in cuts.iter().step_by(stride) {
        let total = sse(0, k) + sse(k, n);
        let threshold = (pairs[k - 1].0 + pairs[k].0) / 2.0;
        if best.map(|(b, _)| total < b).unwrap_or(true) {
            best = Some((total, threshold));
        }
    }
    best
}

/// Ridge regression on the features most correlated with the target.
#[derive(Clone, Debug)]
struct LinearModel {
    /// (feature index, centred-feature weight) pairs.
    weights: Vec<(usize, f64)>,
    /// Per-selected-feature training means, parallel to `weights`.
    feature_means: Vec<f64>,
    /// Target training mean (the intercept).
    y_mean: f64,
}

impl LinearModel {
    fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Option<LinearModel> {
        let n = xs.len();
        if n < 2 {
            return None;
        }
        let dim = xs[0].len();
        let nf = n as f64;
        let y_mean = ys.iter().sum::<f64>() / nf;
        let means: Vec<f64> = (0..dim)
            .map(|j| xs.iter().map(|x| x[j]).sum::<f64>() / nf)
            .collect();

        // Rank features by |covariance with y|; ties break on index so
        // the selection is deterministic.
        let mut ranked: Vec<(usize, f64)> = (0..dim)
            .map(|j| {
                let cov = xs
                    .iter()
                    .zip(ys)
                    .map(|(x, &y)| (x[j] - means[j]) * (y - y_mean))
                    .sum::<f64>()
                    / nf;
                (j, cov.abs())
            })
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let picked: Vec<usize> = ranked
            .iter()
            .take(LINEAR_TOP_K)
            .filter(|(_, c)| *c > 0.0)
            .map(|&(j, _)| j)
            .collect();
        if picked.is_empty() {
            return None;
        }

        // Normal equations on centred data: (X'X + ridge I) w = X'y.
        let k = picked.len();
        let mut a = vec![vec![0.0; k + 1]; k];
        for (r, &jr) in picked.iter().enumerate() {
            for (c, &jc) in picked.iter().enumerate() {
                a[r][c] = xs
                    .iter()
                    .map(|x| (x[jr] - means[jr]) * (x[jc] - means[jc]))
                    .sum::<f64>();
            }
            a[r][r] += RIDGE * nf;
            a[r][k] = xs
                .iter()
                .zip(ys)
                .map(|(x, &y)| (x[jr] - means[jr]) * (y - y_mean))
                .sum::<f64>();
        }
        let w = solve(&mut a)?;
        Some(LinearModel {
            feature_means: picked.iter().map(|&j| means[j]).collect(),
            weights: picked.into_iter().zip(w).collect(),
            y_mean,
        })
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.y_mean
            + self
                .weights
                .iter()
                .zip(&self.feature_means)
                .map(|(&(j, w), &m)| w * (x.get(j).copied().unwrap_or(m) - m))
                .sum::<f64>()
    }
}

/// Gaussian elimination with partial pivoting on an augmented `k x (k+1)`
/// system. Returns `None` for a (numerically) singular matrix.
fn solve(a: &mut [Vec<f64>]) -> Option<Vec<f64>> {
    let k = a.len();
    for col in 0..k {
        let pivot = (col..k).max_by(|&r, &s| a[r][col].abs().total_cmp(&a[s][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        let pivot_row = a[col].clone();
        for (row, row_vals) in a.iter_mut().enumerate() {
            if row != col {
                let f = row_vals[col] / pivot_row[col];
                for (c, p) in pivot_row.iter().enumerate().skip(col) {
                    row_vals[c] -= f * p;
                }
            }
        }
    }
    Some((0..k).map(|r| a[r][k] / a[r][r]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 3*x0 - 2*x1 + small deterministic wiggle.
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..5).map(|_| rng.next_f64()).collect())
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 3.0 * x[0] - 2.0 * x[1] + 0.01 * (x[2] - 0.5))
            .collect();
        (xs, ys)
    }

    #[test]
    fn fit_is_deterministic_for_a_seed() {
        let (xs, ys) = toy_data(64);
        let build = || {
            let mut s = Surrogate::new(7);
            for (x, &y) in xs.iter().zip(&ys) {
                s.observe(x.clone(), y);
            }
            s.fit();
            s
        };
        let a = build();
        let b = build();
        let probe = vec![0.3, 0.7, 0.5, 0.1, 0.9];
        assert_eq!(a.predict(&probe), b.predict(&probe));
    }

    #[test]
    fn refit_only_when_new_data_arrives() {
        let (xs, ys) = toy_data(32);
        let mut s = Surrogate::new(1);
        for (x, &y) in xs.iter().zip(&ys) {
            s.observe(x.clone(), y);
        }
        assert!(s.fit().refit);
        assert!(!s.fit().refit);
        s.observe(vec![0.5; 5], 1.0);
        assert!(s.fit().refit);
        assert_eq!(s.fits(), 2);
    }

    #[test]
    fn surrogate_learns_the_gradient_direction() {
        let (xs, ys) = toy_data(200);
        let mut s = Surrogate::new(3);
        for (x, &y) in xs.iter().zip(&ys) {
            s.observe(x.clone(), y);
        }
        s.fit();
        // Low x0 / high x1 should predict a clearly lower y than the
        // opposite corner.
        let fast = s.predict(&[0.1, 0.9, 0.5, 0.5, 0.5]);
        let slow = s.predict(&[0.9, 0.1, 0.5, 0.5, 0.5]);
        assert!(fast.mean < slow.mean, "{} !< {}", fast.mean, slow.mean);
    }

    #[test]
    fn non_finite_observations_are_dropped() {
        let mut s = Surrogate::new(0);
        s.observe(vec![0.0], f64::NAN);
        s.observe(vec![0.0], f64::INFINITY);
        assert_eq!(s.samples(), 0);
        assert!(!s.ready(1));
    }

    #[test]
    fn identical_inputs_make_pure_leaves() {
        let mut s = Surrogate::new(5);
        for _ in 0..20 {
            s.observe(vec![0.5, 0.5], 2.0);
        }
        s.fit();
        let p = s.predict(&[0.5, 0.5]);
        assert!((p.mean - 2.0).abs() < 1e-9);
        assert!(p.std < 1e-9);
    }
}
