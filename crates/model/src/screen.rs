//! Acquisition-ranked candidate screening.
//!
//! Techniques over-propose; the surrogate scores every candidate; only
//! the `keep` with the best (lowest) acquisition are measured. The
//! acquisition is a lower confidence bound, `mean - kappa * std`: it
//! keeps configs the model predicts fast *and* configs the model knows
//! little about, so screening cannot starve the search of exploration.
//!
//! Kept candidates preserve their original proposal order — the
//! downstream evaluation pipeline assigns per-slot noise seeds by
//! position, so reordering here would leak the screening decision into
//! measurement noise.

use crate::surrogate::Prediction;

/// A screened-out candidate, with the scores that condemned it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rejected {
    /// Index into the original proposal slice.
    pub index: usize,
    /// Surrogate-predicted score, virtual seconds.
    pub predicted_secs: f64,
    /// The acquisition value it was ranked by.
    pub acquisition: f64,
}

/// Outcome of screening one over-proposed batch.
#[derive(Clone, Debug, PartialEq)]
pub struct Screened {
    /// Indices (into the original slice, in original order) to measure.
    pub kept: Vec<usize>,
    /// The rest, in original order.
    pub rejected: Vec<Rejected>,
}

/// Keep the `keep` best-acquisition candidates out of `scores`.
///
/// Fully deterministic: ties are broken by original index, and the
/// output preserves proposal order on both sides.
pub fn screen(scores: &[Prediction], keep: usize, kappa: f64) -> Screened {
    let acquisition: Vec<f64> = scores.iter().map(|p| p.mean - kappa * p.std).collect();
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| acquisition[a].total_cmp(&acquisition[b]).then(a.cmp(&b)));

    let mut keep_mask = vec![false; scores.len()];
    for &i in order.iter().take(keep) {
        keep_mask[i] = true;
    }
    Screened {
        kept: (0..scores.len()).filter(|&i| keep_mask[i]).collect(),
        rejected: (0..scores.len())
            .filter(|&i| !keep_mask[i])
            .map(|i| Rejected {
                index: i,
                predicted_secs: scores[i].mean,
                acquisition: acquisition[i],
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(mean: f64, std: f64) -> Prediction {
        Prediction { mean, std }
    }

    #[test]
    fn keeps_lowest_acquisition_in_original_order() {
        let scores = [p(5.0, 0.0), p(1.0, 0.0), p(3.0, 0.0), p(2.0, 0.0)];
        let out = screen(&scores, 2, 1.0);
        assert_eq!(out.kept, vec![1, 3]);
        assert_eq!(out.rejected.len(), 2);
        assert_eq!(out.rejected[0].index, 0);
        assert_eq!(out.rejected[1].index, 2);
    }

    #[test]
    fn kappa_rewards_uncertainty() {
        // Same mean; the uncertain one wins the single slot.
        let scores = [p(3.0, 0.0), p(3.0, 2.0)];
        assert_eq!(screen(&scores, 1, 1.0).kept, vec![1]);
        // With kappa = 0 the tie breaks to the earlier proposal.
        assert_eq!(screen(&scores, 1, 0.0).kept, vec![0]);
    }

    #[test]
    fn keep_larger_than_input_keeps_everything() {
        let scores = [p(1.0, 0.0), p(2.0, 0.0)];
        let out = screen(&scores, 5, 1.0);
        assert_eq!(out.kept, vec![0, 1]);
        assert!(out.rejected.is_empty());
    }
}
