//! Fixed-length numeric features for JVM configurations.
//!
//! The encoding has two blocks, in a stable order that depends only on
//! the registry and the tree (never on the config being encoded):
//!
//! 1. **Selector one-hots** — for every selector in the flag tree, one
//!    `0/1` feature per option, with the detected option hot. These give
//!    the trees clean axis-aligned splits on structural choices (which
//!    collector, which compiler mode) that a raw flag encoding would
//!    smear across marker booleans.
//! 2. **Flag values** — one `[0, 1]` feature per tunable flag in
//!    registry order: booleans map to `{0, 1}`, enums to
//!    `index / (n - 1)`, and numeric ranges to their linear or log
//!    position inside the domain, mirroring how the search techniques
//!    themselves embed configs.

use jtune_flags::{Domain, FlagId, FlagValue, JvmConfig, Registry};
use jtune_flagtree::FlagTree;

/// Maps configs to fixed-length feature vectors. Cheap to construct,
/// cheaper to call; borrows the registry and tree it encodes against.
#[derive(Clone, Debug)]
pub struct FeatureEncoder<'a> {
    registry: &'a Registry,
    tree: &'a FlagTree,
    /// Tunable flags in registry order — the value block's layout.
    flags: Vec<FlagId>,
    /// Total feature count: selector one-hots + one per tunable flag.
    dim: usize,
}

impl<'a> FeatureEncoder<'a> {
    /// Build the encoder for a registry/tree pair.
    pub fn new(registry: &'a Registry, tree: &'a FlagTree) -> FeatureEncoder<'a> {
        let flags: Vec<FlagId> = registry
            .iter()
            .filter(|(_, spec)| spec.tunable())
            .map(|(id, _)| id)
            .collect();
        let one_hots: usize = tree.selectors().iter().map(|s| s.options.len()).sum();
        let dim = one_hots + flags.len();
        FeatureEncoder {
            registry,
            tree,
            flags,
            dim,
        }
    }

    /// Number of features every encoded vector has.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Encode one config. The vector length always equals [`dim`](Self::dim).
    pub fn encode(&self, config: &JvmConfig) -> Vec<f64> {
        let mut x = Vec::with_capacity(self.dim);
        for sel in self.tree.selectors() {
            let chosen = sel.detect(config);
            for i in 0..sel.options.len() {
                x.push(if i == chosen { 1.0 } else { 0.0 });
            }
        }
        for &flag in &self.flags {
            x.push(self.feature(flag, config.get(flag)));
        }
        debug_assert_eq!(x.len(), self.dim);
        x
    }

    /// A single flag's `[0, 1]` feature value.
    fn feature(&self, flag: FlagId, value: FlagValue) -> f64 {
        match (&self.registry.spec(flag).domain, value) {
            (Domain::Bool, FlagValue::Bool(b)) => {
                if b {
                    1.0
                } else {
                    0.0
                }
            }
            (Domain::Enum { variants }, FlagValue::Enum(i)) => {
                if variants.len() <= 1 {
                    0.0
                } else {
                    f64::from(i) / (variants.len() - 1) as f64
                }
            }
            (Domain::IntRange { lo, hi, log_scale }, FlagValue::Int(v)) => {
                unit_position(*lo as f64, *hi as f64, v as f64, *log_scale)
            }
            (Domain::DoubleRange { lo, hi }, FlagValue::Double(v)) => {
                unit_position(*lo, *hi, v, false)
            }
            // A value of the wrong shape for its domain cannot come out
            // of a validated config; encode it as the domain midpoint so
            // the model degrades instead of panicking.
            _ => 0.5,
        }
    }
}

/// Position of `v` inside `[lo, hi]`, linearly or logarithmically.
fn unit_position(lo: f64, hi: f64, v: f64, log_scale: bool) -> f64 {
    if hi <= lo {
        return 0.0;
    }
    let t = if log_scale && lo > 0.0 {
        (v.max(lo).ln() - lo.ln()) / (hi.ln() - lo.ln())
    } else {
        (v - lo) / (hi - lo)
    };
    t.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtune_flags::hotspot_registry;
    use jtune_flagtree::hotspot_tree;

    #[test]
    fn encoding_is_fixed_length_and_bounded() {
        let registry = hotspot_registry();
        let tree = hotspot_tree();
        let enc = FeatureEncoder::new(registry, tree);
        assert!(enc.dim() > 0);

        let config = JvmConfig::default_for(registry);
        let x = enc.encode(&config);
        assert_eq!(x.len(), enc.dim());
        assert!(x.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn selector_flip_moves_exactly_its_one_hot_block() {
        let registry = hotspot_registry();
        let tree = hotspot_tree();
        let enc = FeatureEncoder::new(registry, tree);

        let base = JvmConfig::default_for(registry);
        let mut flipped = base.clone();
        let sid = tree.selector_ids().next().expect("tree has selectors");
        let sel = tree.selector(sid);
        let default_opt = sel.detect(&base);
        let other = (0..sel.options.len())
            .find(|&i| i != default_opt)
            .expect("selectors have >= 2 options");
        tree.set_selector(registry, &mut flipped, sid, other);
        assert_ne!(sel.detect(&flipped), default_opt);

        let xb = enc.encode(&base);
        let xf = enc.encode(&flipped);
        // The first selector's one-hot block starts at feature 0.
        assert_eq!(xb[default_opt], 1.0);
        assert_eq!(xf[default_opt], 0.0);
        assert_eq!(xf[sel.detect(&flipped)], 1.0);
    }

    #[test]
    fn log_scale_position_is_monotone() {
        let lo = unit_position(1.0, 1024.0, 2.0, true);
        let mid = unit_position(1.0, 1024.0, 32.0, true);
        let hi = unit_position(1.0, 1024.0, 512.0, true);
        assert!(lo < mid && mid < hi);
        assert_eq!(unit_position(1.0, 1024.0, 1.0, true), 0.0);
        assert_eq!(unit_position(1.0, 1024.0, 1024.0, true), 1.0);
    }
}
