//! Surrogate model layer for the auto-tuner.
//!
//! The paper's tuner spends its entire budget on real JVM launches, so
//! every measurement of a config the search was never going to keep is
//! lost improvement. This crate adds the model layer that stretches the
//! measurement budget:
//!
//! * [`FeatureEncoder`] — maps a [`JvmConfig`](jtune_flags::JvmConfig)
//!   through the flag hierarchy into a fixed-length numeric vector:
//!   one-hot selector states followed by one normalized `[0, 1]` feature
//!   per tunable flag (log-scale aware, matching how the search itself
//!   embeds flags).
//! * [`Surrogate`] — a seeded bagged regression-tree ensemble plus a
//!   ridge-regularised linear member, refit online from completed trials.
//!   Predictions carry both a mean and an ensemble-spread `std`, so
//!   callers can trade exploitation against uncertainty.
//! * [`screen`] — acquisition-ranked candidate screening: techniques
//!   over-propose, the surrogate scores every candidate, and only the
//!   most promising subset is actually measured.
//!
//! Everything here is deterministic and dependency-free: all randomness
//! flows from explicit `u64` seeds through the repo's own
//! [`Xoshiro256pp`](jtune_util::Xoshiro256pp), no wall clock is read, and
//! refitting from the same observation sequence always reproduces the
//! same model — the property that lets a resumed session replay its
//! journal and make byte-identical screening decisions.

mod encoder;
mod screen;
mod surrogate;

pub use encoder::FeatureEncoder;
pub use screen::{screen, Rejected, Screened};
pub use surrogate::{FitReport, Prediction, Surrogate};

/// Knobs for surrogate-guided screening, carried in `TunerOptions`.
///
/// `Some(policy)` turns the model layer on; `None` leaves the tuning loop
/// byte-identical to a model-free run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelPolicy {
    /// Over-proposal factor: each round the technique proposes
    /// `ceil(batch * screen_ratio)` candidates and the surrogate keeps
    /// the best `batch`. `1.0` degenerates to no screening.
    pub screen_ratio: f64,
    /// Completed trials required before the surrogate is trusted to
    /// screen; earlier rounds measure every proposal.
    pub warmup: usize,
    /// Optimism weight in the acquisition `mean - kappa * std`: higher
    /// values favour uncertain candidates over predicted-fast ones.
    pub kappa: f64,
}

impl Default for ModelPolicy {
    fn default() -> Self {
        ModelPolicy {
            screen_ratio: 4.0,
            warmup: 12,
            kappa: 1.0,
        }
    }
}

impl ModelPolicy {
    /// Reject out-of-range knobs with a human-readable message.
    pub fn validate(&self) -> Result<(), String> {
        if !self.screen_ratio.is_finite() || self.screen_ratio < 1.0 {
            return Err(format!(
                "screen ratio must be a finite number >= 1.0, got {}",
                self.screen_ratio
            ));
        }
        if self.screen_ratio > 64.0 {
            return Err(format!(
                "screen ratio {} is absurd; the cap is 64",
                self.screen_ratio
            ));
        }
        if !self.kappa.is_finite() || self.kappa < 0.0 {
            return Err(format!(
                "kappa must be a finite number >= 0.0, got {}",
                self.kappa
            ));
        }
        if self.warmup == 0 {
            return Err("warmup must be at least 1 trial".to_string());
        }
        Ok(())
    }

    /// Candidates to request from the technique for a batch of `batch`
    /// measurement slots.
    pub fn proposals_for(&self, batch: usize) -> usize {
        let raw = (batch as f64 * self.screen_ratio).ceil() as usize;
        raw.max(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_validates() {
        ModelPolicy::default().validate().unwrap();
    }

    #[test]
    fn bad_policies_are_rejected() {
        let bad = |f: fn(&mut ModelPolicy)| {
            let mut p = ModelPolicy::default();
            f(&mut p);
            p.validate().is_err()
        };
        assert!(bad(|p| p.screen_ratio = 0.5));
        assert!(bad(|p| p.screen_ratio = f64::NAN));
        assert!(bad(|p| p.screen_ratio = 1000.0));
        assert!(bad(|p| p.kappa = -1.0));
        assert!(bad(|p| p.warmup = 0));
    }

    #[test]
    fn proposal_count_rounds_up_and_never_shrinks() {
        let p = ModelPolicy {
            screen_ratio: 2.5,
            ..ModelPolicy::default()
        };
        assert_eq!(p.proposals_for(4), 10);
        let unity = ModelPolicy {
            screen_ratio: 1.0,
            ..ModelPolicy::default()
        };
        assert_eq!(unity.proposals_for(4), 4);
    }
}
