//! # hotspot-autotuner
//!
//! A search-based **whole-JVM auto-tuner** with a flag hierarchy — a
//! from-scratch Rust reproduction of *Auto-Tuning the Java Virtual
//! Machine* (Jayasena, Fernando, Rusira Patabandi, Perera, Philips;
//! IPDPSW 2015).
//!
//! This crate is the facade: it re-exports the public API of the workspace
//! crates so downstream users depend on one name. See `DESIGN.md` for the
//! architecture and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## The pieces
//!
//! - [`flags`] — the HotSpot JDK-7 flag model: 750+ typed flags with
//!   domains, defaults, validation and `-XX:` command-line round-tripping.
//! - [`flagtree`] — the paper's flag hierarchy: selectors (mutually
//!   exclusive collector choice), gates (feature flags enabling dependent
//!   parameters), activation resolution and search-space statistics.
//! - [`jvmsim`] — a flag-sensitive HotSpot performance simulator
//!   (generational heap, five GC algorithms, tiered JIT, runtime effects,
//!   measurement noise) so tuning sessions run without a real JVM.
//! - [`workloads`] — SPECjvm2008-startup and DaCapo workload models plus a
//!   synthetic generator.
//! - [`harness`] — executors (simulator or a real `java` process),
//!   measurement protocol, budget accounting, parallel evaluation, and
//!   the adaptive evaluation pipeline (trial memoization, duplicate
//!   suppression, sequential racing), plus fault tolerance: transient
//!   retry, deterministic fault injection, trial watchdogs and the
//!   crash-safe trial journal.
//! - [`telemetry`] — session observability: a typed trial-event stream
//!   ([`telemetry::TraceEvent`]) published on a [`telemetry::TelemetryBus`]
//!   to pluggable sinks (JSONL traces, metrics registry, live progress).
//! - [`model`] — surrogate-guided search: a feature encoder over the
//!   flag hierarchy, an online bagged-tree + ridge surrogate, and
//!   acquisition-ranked candidate screening.
//! - [`tuner`] — the auto-tuner: search techniques, the AUC-bandit
//!   ensemble and the bandit portfolio over the full technique set, and
//!   hierarchical/flat/subset manipulators.
//! - [`server`] — the multi-session tuning daemon: concurrent sessions
//!   over a typed line-delimited JSON TCP protocol, fair-share
//!   measurement scheduling, cross-session measurement sharing, remote
//!   trial leasing to `jtune worker` processes, and graceful
//!   drain/resume — with every session byte-identical to its one-shot
//!   equivalent.
//! - [`report`] — post-hoc analytics: replay traces, TSV records and
//!   server state directories into deterministic Markdown / HTML / JSON
//!   reports (`jtune report`).
//!
//! ## Quickstart
//!
//! ```
//! use hotspot_autotuner::prelude::*;
//!
//! // Tune the SPECjvm2008 "compress" startup workload for 2 virtual
//! // minutes (the paper uses 200).
//! let workload = workload_by_name("compress").expect("built-in workload");
//! let executor = SimExecutor::new(workload);
//! let opts = TunerOptions::builder()
//!     .budget(SimDuration::from_mins(2))
//!     .build()
//!     .expect("valid options");
//! let result = Tuner::new(opts).run(&executor, "compress", &TelemetryBus::disabled());
//!
//! println!(
//!     "default {:.2}s -> tuned {:.2}s ({:+.1}%) via {:?}",
//!     result.session.default_secs,
//!     result.session.best_secs,
//!     result.improvement_percent(),
//!     result.session.best_delta,
//! );
//! assert!(result.session.best_secs <= result.session.default_secs);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use autotuner_core as tuner;
pub use jtune_flags as flags;
pub use jtune_flagtree as flagtree;
pub use jtune_harness as harness;
pub use jtune_jvmsim as jvmsim;
pub use jtune_model as model;
pub use jtune_report as report;
pub use jtune_server as server;
pub use jtune_telemetry as telemetry;
pub use jtune_util as util;
pub use jtune_workloads as workloads;

/// The names most programs need, in one import.
pub mod prelude {
    pub use autotuner_core::{
        tuner::ManipulatorKind, ModelPolicy, OptionsError, SessionError, Tuner, TunerOptions,
        TunerOptionsBuilder, TuningResult,
    };
    pub use jtune_flags::{hotspot_registry, FlagValue, JvmConfig};
    pub use jtune_flagtree::hotspot_tree;
    pub use jtune_harness::{
        CachePolicy, EvalPipeline, Executor, ExecutorSpec, FaultPlan, FaultyExecutor,
        JournalWriter, ProcessExecutor, Protocol, QuarantinePolicy, Racing, ReplayLog, RetryPolicy,
        SessionHeader, SimExecutor, TrialCache, TrialError,
    };
    pub use jtune_jvmsim::{JvmSim, Machine, Workload};
    pub use jtune_report::{Report, SessionSummary};
    pub use jtune_server::{Client, ServerConfig, SessionSpec, SessionState, TuneServer};
    pub use jtune_telemetry::{
        JsonlSink, MemoryRecorder, MetricsRegistry, ProgressReporter, TelemetryBus, TraceEvent,
        TuningObserver,
    };
    pub use jtune_util::SimDuration;
    pub use jtune_workloads::{dacapo, specjvm2008_startup, workload_by_name};
}
