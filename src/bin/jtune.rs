//! `jtune` — the HotSpot auto-tuner command line.
//!
//! ```text
//! jtune tune <workload> [--budget MIN] [--seed N] [--technique NAME]
//!                       [--manipulator hier|flat|subset] [--minimize]
//!                       [--workers N] [--batch N]
//!                       [--cache] [--cache-recharge F]
//!                       [--racing] [--min-repeats N]
//!                       [--no-fail-fast] [--retries N] [--retry-backoff F]
//!                       [--quarantine N] [--deadline SECS]
//!                       [--fault-rate F] [--fault-seed N]
//!                       [--checkpoint PATH] [--resume PATH]
//!                       [--trace PATH] [--progress] [--json]
//! jtune suite <spec|dacapo> [--budget MIN] [--trace PATH] [--progress] [--json]
//! jtune simulate <workload> [-XX:... flags]
//! jtune flags [substring]
//! jtune tree
//! jtune workloads
//! ```

use std::sync::Arc;

use hotspot_autotuner::flagtree::SpaceStats;
use hotspot_autotuner::prelude::*;
use hotspot_autotuner::tuner::analysis::{flag_impact, ImpactOptions};
use hotspot_autotuner::util::json;
use hotspot_autotuner::util::stats::Summary;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "tune" => cmd_tune(rest),
            "suite" => cmd_suite(rest),
            "simulate" => cmd_simulate(rest),
            "flags" => cmd_flags(rest),
            "tree" => cmd_tree(),
            "workloads" => cmd_workloads(),
            "--help" | "-h" | "help" => usage(0),
            other => {
                eprintln!("unknown command {other:?}\n");
                usage(2)
            }
        },
        None => usage(2),
    };
    std::process::exit(code);
}

fn usage(code: i32) -> i32 {
    eprintln!(
        "jtune — search-based whole-JVM auto-tuner (IPDPSW'15 reproduction)

USAGE:
  jtune tune <workload> [--budget MIN] [--seed N] [--technique NAME]
                        [--manipulator hier|flat|subset] [--minimize]
                        [--workers N] [--batch N]
                        [--cache] [--cache-recharge F]
                        [--racing] [--min-repeats N]
                        [--no-fail-fast] [--retries N] [--retry-backoff F]
                        [--quarantine N] [--deadline SECS]
                        [--fault-rate F] [--fault-seed N]
                        [--checkpoint PATH] [--resume PATH]
                        [--trace PATH] [--progress] [--json]
  jtune suite <spec|dacapo> [--budget MIN] [--seed N]
                        [... same tuning/fault flags as tune ...]
                        [--trace PATH] [--progress] [--json]
  jtune simulate <workload> [--gclog] [-XX:...flag ...]
  jtune flags [substring]      list the 750-flag registry
  jtune tree                   print the flag hierarchy + space statistics
  jtune workloads              list built-in workload models

Workload names: bare (`serial`), or suite-qualified (`dacapo:h2`,
`spec:sunflow`). Budgets are virtual minutes; the paper used 200.

Budget stretching: --cache memoizes trials so revisited configurations
cost nothing (--cache-recharge F charges hits F× their original cost,
0 <= F <= 1), --racing aborts candidates that are statistically worse
than the best-so-far after --min-repeats runs, refunding the unspent
repeats. Both default off; with both off sessions are byte-identical
to earlier releases.

Fault tolerance: --retries N repeats transiently-failing runs up to N
times (--retry-backoff F charges attempt k at F^k its cost),
--no-fail-fast keeps measuring a candidate after its first failure,
--quarantine N blacklists configurations after N deterministic-failure
runs, and --deadline SECS imposes a per-run watchdog timeout.
--fault-rate F injects deterministic transient faults (crashes, hangs,
noise spikes) into F of all runs for resilience testing, seeded by
--fault-seed. --checkpoint PATH journals every completed trial so a
killed session can continue via --resume PATH (usually the same path)
with a byte-identical trace. All default off; with everything off,
sessions are byte-identical to earlier releases.

Observability: --trace PATH streams one JSON event per trial to PATH
(JSON Lines, bit-deterministic for a given seed), --progress reports
live tuning progress on stderr, --json prints the final session
record(s) as JSON on stdout instead of the human-readable summary."
    );
    code
}

fn parse_opt(rest: &[String], name: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1).cloned())
}

fn tuner_options_from(rest: &[String]) -> Result<TunerOptions, OptionsError> {
    let mut b = TunerOptions::builder();
    if let Some(raw) = parse_opt(rest, "--budget") {
        match raw.parse() {
            Ok(mins) => b = b.budget(SimDuration::from_mins(mins)),
            Err(_) => eprintln!("warning: --budget {raw:?} is not a number of minutes; ignoring"),
        }
    }
    if let Some(raw) = parse_opt(rest, "--seed") {
        match raw.parse() {
            Ok(seed) => b = b.seed(seed),
            Err(_) => eprintln!("warning: --seed {raw:?} is not an integer; using default"),
        }
    }
    if let Some(t) = parse_opt(rest, "--technique") {
        b = b.technique(t);
    }
    if let Some(m) = parse_opt(rest, "--manipulator") {
        b = b.manipulator(match m.as_str() {
            "hier" | "hierarchical" => ManipulatorKind::Hierarchical,
            "flat" => ManipulatorKind::Flat,
            "subset" | "gc-subset" => ManipulatorKind::GcSubset,
            other => {
                eprintln!("unknown manipulator {other:?}; using hierarchical");
                ManipulatorKind::Hierarchical
            }
        });
    }
    if let Some(raw) = parse_opt(rest, "--workers") {
        match raw.parse() {
            Ok(n) => b = b.workers(n),
            Err(_) => eprintln!("warning: --workers {raw:?} is not an integer; using default"),
        }
    }
    if let Some(raw) = parse_opt(rest, "--batch") {
        match raw.parse() {
            Ok(n) => b = b.batch(n),
            Err(_) => eprintln!("warning: --batch {raw:?} is not an integer; using default"),
        }
    }
    // --cache-recharge implies --cache: asking for a hit-recharge fraction
    // only makes sense with the trial cache on.
    let recharge = parse_opt(rest, "--cache-recharge").map(|raw| {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("warning: --cache-recharge {raw:?} is not a number; using 0");
            0.0
        })
    });
    if rest.iter().any(|a| a == "--cache") || recharge.is_some() {
        b = b.cache(CachePolicy {
            recharge: recharge.unwrap_or(0.0),
        });
    }
    let min_repeats = parse_opt(rest, "--min-repeats").map(|raw| {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("warning: --min-repeats {raw:?} is not an integer; using default");
            Racing::default().min_repeats
        })
    });
    if rest.iter().any(|a| a == "--racing") || min_repeats.is_some() {
        let mut racing = Racing::default();
        if let Some(m) = min_repeats {
            racing.min_repeats = m;
        }
        b = b.racing(racing);
    }
    if rest.iter().any(|a| a == "--no-fail-fast") {
        b = b.fail_fast(false);
    }
    // --retry-backoff implies --retries: a backoff factor only matters
    // with the retry policy on (mirrors --cache-recharge / --cache).
    let retries = parse_opt(rest, "--retries").map(|raw| {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("warning: --retries {raw:?} is not an integer; using default");
            RetryPolicy::default().max_retries
        })
    });
    let backoff = parse_opt(rest, "--retry-backoff").map(|raw| {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("warning: --retry-backoff {raw:?} is not a number; using default");
            RetryPolicy::default().backoff
        })
    });
    if retries.is_some() || backoff.is_some() {
        let mut retry = RetryPolicy::default();
        if let Some(n) = retries {
            retry.max_retries = n;
        }
        if let Some(f) = backoff {
            retry.backoff = f;
        }
        b = b.retry(retry);
    }
    if let Some(raw) = parse_opt(rest, "--quarantine") {
        match raw.parse() {
            Ok(streak) => b = b.quarantine(QuarantinePolicy { streak }),
            Err(_) => eprintln!("warning: --quarantine {raw:?} is not an integer; ignoring"),
        }
    }
    if let Some(path) = parse_opt(rest, "--checkpoint") {
        b = b.checkpoint(path);
    }
    if let Some(path) = parse_opt(rest, "--resume") {
        b = b.resume(path);
    }
    b.build()
}

/// Build the simulator executor for a workload, honoring `--deadline`
/// (a virtual per-run watchdog timeout in seconds).
fn sim_executor_from(workload: Workload, rest: &[String]) -> SimExecutor {
    let mut sim = SimExecutor::new(workload);
    if let Some(raw) = parse_opt(rest, "--deadline") {
        match raw.parse::<f64>() {
            Ok(secs) if secs > 0.0 => sim = sim.with_deadline(SimDuration::from_secs_f64(secs)),
            _ => eprintln!("warning: --deadline {raw:?} is not a positive number; ignoring"),
        }
    }
    sim
}

/// Parse `--fault-rate` / `--fault-seed` into an injection plan, or
/// `None` when fault injection is off (the default).
fn fault_plan_from(rest: &[String]) -> Option<FaultPlan> {
    let rate: f64 = parse_opt(rest, "--fault-rate")?.parse().ok().or_else(|| {
        eprintln!("warning: --fault-rate is not a number; fault injection off");
        None
    })?;
    if rate <= 0.0 {
        return None;
    }
    let seed = parse_opt(rest, "--fault-seed")
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(0xFA_017);
    Some(FaultPlan::transient(rate, seed))
}

/// Build the telemetry bus requested on the command line: `--trace PATH`
/// attaches a JSONL sink, `--progress` a live stderr reporter.
fn telemetry_from(rest: &[String]) -> TelemetryBus {
    let mut bus = TelemetryBus::new();
    if let Some(path) = parse_opt(rest, "--trace") {
        match JsonlSink::create(&path) {
            Ok(sink) => {
                bus.add(Arc::new(sink));
            }
            Err(e) => eprintln!("warning: cannot create trace file {path:?}: {e}"),
        }
    }
    if rest.iter().any(|a| a == "--progress") {
        bus.add(Arc::new(ProgressReporter::stderr()));
    }
    bus
}

fn cmd_tune(rest: &[String]) -> i32 {
    let Some(name) = rest.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("tune: missing workload name");
        return 2;
    };
    let Some(workload) = workload_by_name(name) else {
        eprintln!("unknown workload {name:?} (see `jtune workloads`)");
        return 2;
    };
    let opts = match tuner_options_from(rest) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("tune: invalid options: {e}");
            return 2;
        }
    };
    let minimize = rest.iter().any(|a| a == "--minimize");
    let json_out = rest.iter().any(|a| a == "--json");
    let bus = telemetry_from(rest);
    if !json_out {
        println!(
            "tuning {name} ({} budget, technique {}, {:?} manipulator)",
            opts.budget, opts.technique, opts.manipulator
        );
    }
    // Fault injection wraps the simulator for the *tuning* run only;
    // flag-impact attribution below always measures fault-free.
    let tuning_executor: Box<dyn Executor> = match fault_plan_from(rest) {
        Some(plan) => Box::new(FaultyExecutor::new(
            sim_executor_from(workload.clone(), rest),
            plan,
        )),
        None => Box::new(sim_executor_from(workload.clone(), rest)),
    };
    let result = Tuner::new(opts).run(tuning_executor.as_ref(), name, &bus);
    if json_out {
        println!("{}", result.session.to_json());
        return 0;
    }
    println!(
        "default {:.3}s -> best {:.3}s  ({:+.1}%)  [{} candidates]",
        result.session.default_secs,
        result.session.best_secs,
        result.improvement_percent(),
        result.session.evaluations
    );
    if minimize {
        println!("\nmeasuring marginal flag impacts (reverting one at a time)...");
        let impact_executor = sim_executor_from(workload, rest);
        let impacts = flag_impact(
            &impact_executor,
            &result.best_config,
            ImpactOptions::default(),
        );
        println!("{:<44} {:>10}", "flag", "impact");
        for i in impacts.iter().filter(|i| i.impact_percent.abs() >= 0.75) {
            println!(
                "{:<44} {:>9.1}%",
                format!("{}={}", i.name, i.value),
                i.impact_percent
            );
        }
        let hitch = impacts
            .iter()
            .filter(|i| i.impact_percent.abs() < 0.75)
            .count();
        println!("(+ {hitch} inert hitchhiker flags omitted)");
    } else {
        println!("\nrecommended flags:");
        for f in &result.session.best_delta {
            println!("  {f}");
        }
    }
    0
}

fn cmd_suite(rest: &[String]) -> i32 {
    let Some(which) = rest.first() else {
        eprintln!("suite: expected `spec` or `dacapo`");
        return 2;
    };
    let workloads = match which.as_str() {
        "spec" => specjvm2008_startup(),
        "dacapo" => dacapo(),
        other => {
            eprintln!("unknown suite {other:?}");
            return 2;
        }
    };
    let base = match tuner_options_from(rest) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("suite: invalid options: {e}");
            return 2;
        }
    };
    let json_out = rest.iter().any(|a| a == "--json");
    let bus = telemetry_from(rest);
    let mut improvements = Vec::new();
    let mut records = Vec::new();
    if !json_out {
        println!(
            "{:<22} {:>10} {:>10} {:>12}",
            "program", "default(s)", "tuned(s)", "improvement"
        );
    }
    for (i, workload) in workloads.into_iter().enumerate() {
        let name = workload.name.clone();
        let mut opts = base.clone();
        opts.seed ^= (i as u64 + 1) << 32;
        let executor: Box<dyn Executor> = match fault_plan_from(rest) {
            Some(plan) => Box::new(FaultyExecutor::new(sim_executor_from(workload, rest), plan)),
            None => Box::new(sim_executor_from(workload, rest)),
        };
        let result = Tuner::new(opts).run(executor.as_ref(), &name, &bus);
        improvements.push(result.improvement_percent());
        if json_out {
            records.push(result.session.to_json());
            continue;
        }
        println!(
            "{:<22} {:>10.2} {:>10.2} {:>11.1}%",
            name,
            result.session.default_secs,
            result.session.best_secs,
            result.improvement_percent()
        );
    }
    if json_out {
        println!("{}", json::array_of(&records));
        return 0;
    }
    let s = Summary::from_slice(&improvements);
    println!(
        "\naverage {:+.1}%  (min {:+.1}%, max {:+.1}%)",
        s.mean(),
        s.min(),
        s.max()
    );
    0
}

fn cmd_simulate(rest: &[String]) -> i32 {
    let Some(name) = rest.first() else {
        eprintln!("simulate: missing workload name");
        return 2;
    };
    let Some(workload) = workload_by_name(name) else {
        eprintln!("unknown workload {name:?}");
        return 2;
    };
    let registry = hotspot_registry();
    let flag_args: Vec<String> = rest[1..]
        .iter()
        .filter(|a| *a != "--gclog")
        .cloned()
        .collect();
    let config = match JvmConfig::parse_args(registry, &flag_args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bad flags: {e}");
            return 2;
        }
    };
    let gclog = rest.iter().any(|a| a == "--gclog");
    let executor = SimExecutor::new(workload);
    let outcome = executor.run_full(&config, 1);
    if gclog {
        let machine = hotspot_autotuner::jvmsim::Machine::default();
        match hotspot_autotuner::jvmsim::FlagView::resolve(registry, &config, &machine) {
            Ok((view, _)) => print!(
                "{}",
                hotspot_autotuner::jvmsim::gclog::render(&outcome, view.collector)
            ),
            // The VM refused to start (e.g. conflicting collector
            // selections): there is no collector to render a log for.
            Err(e) => eprintln!("run FAILED: {e}"),
        }
        return if outcome.ok() { 0 } else { 1 };
    }
    if let Some(f) = &outcome.failure {
        println!("run FAILED: {f}");
        return 1;
    }
    println!("total      {}", outcome.total);
    println!("startup    {}", outcome.breakdown.startup);
    println!("mutator    {}", outcome.breakdown.mutator);
    println!(
        "gc pauses  {} ({} young, {} full, p99 {})",
        outcome.breakdown.gc_pause,
        outcome.gc.young_collections,
        outcome.gc.full_collections,
        outcome.gc.pauses.percentile(99.0)
    );
    println!("gc drag    {}", outcome.breakdown.gc_concurrent_drag);
    println!(
        "jit stalls {} ({} C1 + {} C2 compiles, {:.0}% of work at C2)",
        outcome.breakdown.jit_stall,
        outcome.jit.c1_compiles,
        outcome.jit.c2_compiles,
        outcome.jit.c2_work_fraction * 100.0
    );
    println!("peak heap  {:.1} MB", outcome.peak_heap / 1e6);
    for w in &outcome.warnings {
        println!("warning: {w}");
    }
    0
}

fn cmd_flags(rest: &[String]) -> i32 {
    use std::io::Write as _;
    let registry = hotspot_registry();
    let filter = rest.first().map(String::as_str).unwrap_or("");
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut shown = 0;
    for (_, spec) in registry.iter() {
        if !filter.is_empty() && !spec.name.to_lowercase().contains(&filter.to_lowercase()) {
            continue;
        }
        shown += 1;
        // Ignore write errors: a closed pipe (`jtune flags | head`) is a
        // normal way to consume this listing.
        if writeln!(
            out,
            "{:<40} {:<22} default={:<12} {}",
            spec.name,
            spec.category.name(),
            spec.default.to_string(),
            spec.desc
        )
        .is_err()
        {
            return 0;
        }
    }
    let _ = writeln!(out, "\n{shown} of {} flags shown", registry.len());
    0
}

fn cmd_tree() -> i32 {
    use std::io::Write as _;
    let registry = hotspot_registry();
    let tree = hotspot_tree();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    // Ignore write errors: a closed pipe (`jtune tree | head`) is a
    // normal way to consume this listing.
    if write!(out, "{}", tree.render_skeleton(registry)).is_err() {
        return 0;
    }
    let stats = SpaceStats::compute(tree, registry);
    let _ = writeln!(
        out,
        "\nflat space: 10^{:.0} configurations over {} tunable flags",
        stats.flat_log10, stats.tunable_flags
    );
    let _ = writeln!(
        out,
        "hierarchical space: 10^{:.0}  (10^{:.0} smaller)",
        stats.hierarchical_log10,
        stats.reduction_log10()
    );
    0
}

fn cmd_workloads() -> i32 {
    use std::io::Write as _;
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let _ = writeln!(out, "SPECjvm2008 startup (16):");
    for w in specjvm2008_startup() {
        if writeln!(
            out,
            "  spec:{:<22} work {:>8.1e}  live {:>5.0} MB  {} threads",
            w.name,
            w.total_work,
            w.live_set / 1e6,
            w.threads
        )
        .is_err()
        {
            return 0;
        }
    }
    let _ = writeln!(out, "DaCapo (13):");
    for w in dacapo() {
        if writeln!(
            out,
            "  dacapo:{:<20} work {:>8.1e}  live {:>5.0} MB  {} threads",
            w.name,
            w.total_work,
            w.live_set / 1e6,
            w.threads
        )
        .is_err()
        {
            return 0;
        }
    }
    0
}
