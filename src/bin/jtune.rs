//! `jtune` — the HotSpot auto-tuner command line.
//!
//! ```text
//! jtune tune <workload> [--budget MIN] [--seed N] [--technique NAME]
//!                       [--manipulator hier|flat|subset] [--minimize]
//!                       [--workers N] [--batch N]
//!                       [--cache] [--cache-recharge F]
//!                       [--racing] [--min-repeats N]
//!                       [--no-fail-fast] [--retries N] [--retry-backoff F]
//!                       [--quarantine N] [--deadline SECS]
//!                       [--fault-rate F] [--fault-seed N]
//!                       [--model] [--screen-ratio F] [--portfolio]
//!                       [--checkpoint PATH] [--resume PATH]
//!                       [--trace PATH] [--progress] [--json]
//! jtune suite <spec|dacapo> [--budget MIN] [--trace PATH] [--progress] [--json]
//! jtune serve [--listen ADDR] [--capacity N] [--queue N] [--slots N]
//!             [--state-dir DIR] [--spans] [--lease-ms MS]
//!             [--io-timeout-ms MS] [--max-frame BYTES] [--conn-limit N]
//!             [--net-fault-rate F] [--net-fault-seed N]
//! jtune worker --connect HOST:PORT [--slots N] [--wait-ms MS]
//!              [--retries N] [--retry-max-ms MS]
//!              [--net-fault-rate F] [--net-fault-seed N]
//! jtune client <submit|status|watch|result|cancel|stats|shutdown> [...]
//!              [--retries N] [--retry-max-ms MS]
//! jtune report <dir-or-trace> [--format md|html|json] [--out PATH]
//! jtune simulate <workload> [-XX:... flags]
//! jtune flags [substring]
//! jtune tree
//! jtune workloads
//! ```

use std::sync::Arc;

use hotspot_autotuner::flagtree::SpaceStats;
use hotspot_autotuner::prelude::*;
use hotspot_autotuner::tuner::analysis::{flag_impact, ImpactOptions};
use hotspot_autotuner::util::json;
use hotspot_autotuner::util::stats::Summary;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "tune" => cmd_tune(rest),
            "suite" => cmd_suite(rest),
            "serve" => cmd_serve(rest),
            "worker" => cmd_worker(rest),
            "client" => cmd_client(rest),
            "report" => cmd_report(rest),
            "simulate" => cmd_simulate(rest),
            "flags" => cmd_flags(rest),
            "tree" => cmd_tree(),
            "workloads" => cmd_workloads(),
            "--help" | "-h" | "help" => usage(0),
            other => {
                eprintln!("unknown command {other:?}\n");
                usage(2)
            }
        },
        None => usage(2),
    };
    std::process::exit(code);
}

fn usage(code: i32) -> i32 {
    eprintln!(
        "jtune — search-based whole-JVM auto-tuner (IPDPSW'15 reproduction)

USAGE:
  jtune tune <workload> [--budget MIN] [--seed N] [--technique NAME]
                        [--manipulator hier|flat|subset] [--minimize]
                        [--workers N] [--batch N]
                        [--cache] [--cache-recharge F]
                        [--racing] [--min-repeats N]
                        [--no-fail-fast] [--retries N] [--retry-backoff F]
                        [--quarantine N] [--deadline SECS]
                        [--fault-rate F] [--fault-seed N]
                        [--model] [--screen-ratio F] [--portfolio]
                        [--checkpoint PATH] [--resume PATH]
                        [--trace PATH] [--progress] [--json]
  jtune suite <spec|dacapo> [--budget MIN] [--seed N]
                        [... same tuning/fault flags as tune ...]
                        [--trace PATH] [--progress] [--json]
  jtune serve [--listen ADDR] [--capacity N] [--queue N] [--slots N]
              [--state-dir DIR] [--spans] [--lease-ms MS]
              [--io-timeout-ms MS] [--max-frame BYTES] [--conn-limit N]
              [--net-fault-rate F] [--net-fault-seed N]
  jtune worker --connect HOST:PORT [--slots N] [--wait-ms MS]
               [--retries N] [--retry-max-ms MS]
               [--net-fault-rate F] [--net-fault-seed N]
  jtune client submit <workload> [--budget MIN] [--seed N] [--max-evals N]
                      [--screen-ratio F] [--technique NAME]
  jtune client status [SID] | watch <SID> | result <SID> | cancel <SID>
  jtune client stats [SID] | shutdown [--no-drain]
  jtune client ... [--addr HOST:PORT]   (default 127.0.0.1:7171)
                   [--retries N] [--retry-max-ms MS]   (backoff, default off)
  jtune report <dir-or-trace> [--format md|html|json] [--out PATH]
  jtune simulate <workload> [--gclog] [-XX:...flag ...]
  jtune flags [substring]      list the 750-flag registry
  jtune tree                   print the flag hierarchy + space statistics
  jtune workloads              list built-in workload models

Workload names: bare (`serial`), or suite-qualified (`dacapo:h2`,
`spec:sunflow`). Budgets are virtual minutes; the paper used 200.

Budget stretching: --cache memoizes trials so revisited configurations
cost nothing (--cache-recharge F charges hits F× their original cost,
0 <= F <= 1), --racing aborts candidates that are statistically worse
than the best-so-far after --min-repeats runs, refunding the unspent
repeats. Both default off; with both off sessions are byte-identical
to earlier releases.

Fault tolerance: --retries N repeats transiently-failing runs up to N
times (--retry-backoff F charges attempt k at F^k its cost),
--no-fail-fast keeps measuring a candidate after its first failure,
--quarantine N blacklists configurations after N deterministic-failure
runs, and --deadline SECS imposes a per-run watchdog timeout.
--fault-rate F injects deterministic transient faults (crashes, hangs,
noise spikes) into F of all runs for resilience testing, seeded by
--fault-seed. --checkpoint PATH journals every completed trial so a
killed session can continue via --resume PATH (usually the same path)
with a byte-identical trace. All default off; with everything off,
sessions are byte-identical to earlier releases.

Model-guided search: --model screens candidates with an online
bagged-tree surrogate — each round over-proposes by --screen-ratio F
(default 4, implies --model), scores the proposals, and only measures
the acquisition-ranked best. --portfolio runs a seeded multi-armed
bandit over the full technique set (shorthand for --technique
portfolio; prefix any technique with `model:` to combine it with the
screen). Both default off; with them off, sessions are byte-identical
to earlier releases.

Observability: --trace PATH streams one JSON event per trial to PATH
(JSON Lines, bit-deterministic for a given seed), --progress reports
live tuning progress on stderr, --json prints the final session
record(s) as JSON on stdout instead of the human-readable summary.
`jtune report` replays a trace file, a session directory, an
experiment directory, or a server state directory into a deterministic
Markdown, HTML, or JSON report. `jtune serve --spans` (and `jtune
client stats`) expose live per-phase wall histograms; spans never
change the serialised trace bytes.

Serving: `jtune serve` runs many tuning sessions concurrently behind a
line-delimited JSON protocol over TCP, sharing measurements across
sessions and scheduling them fairly; each session's trace and result
stay byte-identical to the one-shot `jtune tune` run with the same
spec. `shutdown` (default) drains: in-flight sessions checkpoint and
resume when a daemon restarts on the same --state-dir.

Overload hardening: the daemon runs --capacity sessions at once and
queues up to --queue more; past both bounds submits are shed with a
stable `overloaded` error carrying a retry_after_ms hint. --conn-limit
bounds concurrent connections, --io-timeout-ms reaps peers that stall
mid-frame (slow-loris), and --max-frame rejects oversized lines with
`frame-too-large`. Clients and workers retry with jittered exponential
backoff (--retries/--retry-max-ms; client default off, worker default
5) honoring the daemon's hint, and workers reconnect after connection
loss. --net-fault-rate/--net-fault-seed (serve and worker) inject a
seeded, bit-reproducible schedule of frame drops, delays, garbles and
disconnects for chaos testing — traces stay byte-identical throughout.

Distributed tuning: `jtune worker --connect HOST:PORT` attaches remote
measurement capacity to a daemon. Workers lease trials over the same
JSONL protocol, measure them with the identical pure simulator, and
stream results back; lost workers are detected by lease expiry
(--lease-ms, default 10000) and their trials reissued or run locally,
so traces and results stay byte-identical with any number of workers —
including zero."
    );
    code
}

/// Reject flags the command does not define, flags missing their value,
/// and surplus positional arguments. `allowed` pairs each flag with
/// whether it consumes a value.
fn reject_unknown_flags(
    cmd: &str,
    rest: &[String],
    max_positionals: usize,
    allowed: &[(&str, bool)],
) -> Result<(), String> {
    let mut positionals = 0usize;
    let mut i = 0;
    while i < rest.len() {
        let arg = &rest[i];
        if let Some((name, takes_value)) = allowed.iter().find(|(n, _)| arg.as_str() == *n) {
            if *takes_value {
                if i + 1 >= rest.len() {
                    return Err(format!("{cmd}: flag {name} requires a value"));
                }
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if arg.starts_with('-') {
            return Err(format!("{cmd}: unknown flag {arg:?}"));
        }
        positionals += 1;
        if positionals > max_positionals {
            return Err(format!("{cmd}: unexpected argument {arg:?}"));
        }
        i += 1;
    }
    Ok(())
}

/// Every flag `tune` (and `suite`, which shares the set) accepts.
const TUNE_FLAGS: &[(&str, bool)] = &[
    ("--budget", true),
    ("--seed", true),
    ("--technique", true),
    ("--manipulator", true),
    ("--minimize", false),
    ("--workers", true),
    ("--batch", true),
    ("--cache", false),
    ("--cache-recharge", true),
    ("--racing", false),
    ("--min-repeats", true),
    ("--no-fail-fast", false),
    ("--retries", true),
    ("--retry-backoff", true),
    ("--quarantine", true),
    ("--deadline", true),
    ("--fault-rate", true),
    ("--fault-seed", true),
    ("--model", false),
    ("--screen-ratio", true),
    ("--portfolio", false),
    ("--checkpoint", true),
    ("--resume", true),
    ("--trace", true),
    ("--progress", false),
    ("--json", false),
];

fn parse_opt(rest: &[String], name: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1).cloned())
}

/// Parse a flag's value, turning a malformed one into a hard error (the
/// CLI exits non-zero rather than silently tuning with a default).
fn parse_value<T: std::str::FromStr>(
    rest: &[String],
    name: &str,
    what: &str,
) -> Result<Option<T>, String> {
    match parse_opt(rest, name) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("{name} {raw:?} is not {what}")),
    }
}

fn tuner_options_from(rest: &[String]) -> Result<TunerOptions, String> {
    let mut b = TunerOptions::builder();
    if let Some(mins) = parse_value(rest, "--budget", "a whole number of minutes")? {
        b = b.budget(SimDuration::from_mins(mins));
    }
    if let Some(seed) = parse_value(rest, "--seed", "an integer")? {
        b = b.seed(seed);
    }
    if let Some(t) = parse_opt(rest, "--technique") {
        b = b.technique(t);
    }
    if let Some(m) = parse_opt(rest, "--manipulator") {
        b = b.manipulator(match m.as_str() {
            "hier" | "hierarchical" => ManipulatorKind::Hierarchical,
            "flat" => ManipulatorKind::Flat,
            "subset" | "gc-subset" => ManipulatorKind::GcSubset,
            other => return Err(format!("unknown manipulator {other:?} (hier|flat|subset)")),
        });
    }
    if let Some(n) = parse_value(rest, "--workers", "an integer")? {
        b = b.workers(n);
    }
    if let Some(n) = parse_value(rest, "--batch", "an integer")? {
        b = b.batch(n);
    }
    // --cache-recharge implies --cache: asking for a hit-recharge fraction
    // only makes sense with the trial cache on.
    let recharge = parse_value(rest, "--cache-recharge", "a number")?;
    if rest.iter().any(|a| a == "--cache") || recharge.is_some() {
        b = b.cache(CachePolicy {
            recharge: recharge.unwrap_or(0.0),
        });
    }
    let min_repeats = parse_value(rest, "--min-repeats", "an integer")?;
    if rest.iter().any(|a| a == "--racing") || min_repeats.is_some() {
        let mut racing = Racing::default();
        if let Some(m) = min_repeats {
            racing.min_repeats = m;
        }
        b = b.racing(racing);
    }
    if rest.iter().any(|a| a == "--no-fail-fast") {
        b = b.fail_fast(false);
    }
    // --retry-backoff implies --retries: a backoff factor only matters
    // with the retry policy on (mirrors --cache-recharge / --cache).
    let retries = parse_value(rest, "--retries", "an integer")?;
    let backoff = parse_value(rest, "--retry-backoff", "a number")?;
    if retries.is_some() || backoff.is_some() {
        let mut retry = RetryPolicy::default();
        if let Some(n) = retries {
            retry.max_retries = n;
        }
        if let Some(f) = backoff {
            retry.backoff = f;
        }
        b = b.retry(retry);
    }
    if let Some(streak) = parse_value(rest, "--quarantine", "an integer")? {
        b = b.quarantine(QuarantinePolicy { streak });
    }
    // --screen-ratio implies --model: an over-proposal factor only makes
    // sense with the surrogate screen on (mirrors --cache-recharge).
    let ratio = parse_value(rest, "--screen-ratio", "a number")?;
    if rest.iter().any(|a| a == "--model") || ratio.is_some() {
        let mut model = ModelPolicy::default();
        if let Some(r) = ratio {
            model.screen_ratio = r;
        }
        b = b.model(model);
    }
    // --portfolio is shorthand for --technique portfolio; an explicit
    // --technique wins when both are given.
    if rest.iter().any(|a| a == "--portfolio") && parse_opt(rest, "--technique").is_none() {
        b = b.technique("portfolio");
    }
    if let Some(path) = parse_opt(rest, "--checkpoint") {
        b = b.checkpoint(path);
    }
    if let Some(path) = parse_opt(rest, "--resume") {
        b = b.resume(path);
    }
    b.build().map_err(|e| e.to_string())
}

/// The declarative executor description the command line denotes:
/// simulator backend for `workload`, honoring `--deadline` (a virtual
/// per-run watchdog timeout in seconds) and `--fault-rate` /
/// `--fault-seed` (deterministic fault injection, off by default).
/// One description serves every consumer — `tune`, `suite`, experiment
/// drivers, daemon sessions, and remote workers all call
/// [`ExecutorSpec::build`] instead of hand-wiring executor stacks.
fn executor_spec_from(workload: Workload, rest: &[String]) -> Result<ExecutorSpec, String> {
    let mut spec = ExecutorSpec::sim(workload);
    if let Some(raw) = parse_opt(rest, "--deadline") {
        match raw.parse::<f64>() {
            Ok(secs) if secs > 0.0 => spec = spec.with_deadline(secs),
            _ => return Err(format!("--deadline {raw:?} is not a positive number")),
        }
    }
    let fault = match parse_value::<f64>(rest, "--fault-rate", "a number")? {
        Some(rate) if rate > 0.0 => {
            let seed = parse_value(rest, "--fault-seed", "an integer")?.unwrap_or(0xFA_017);
            Some(FaultPlan::transient(rate, seed))
        }
        _ => None,
    };
    Ok(spec.with_fault(fault))
}

/// Build the telemetry bus requested on the command line: `--trace PATH`
/// attaches a JSONL sink, `--progress` a live stderr reporter.
fn telemetry_from(rest: &[String]) -> TelemetryBus {
    let mut bus = TelemetryBus::new();
    if let Some(path) = parse_opt(rest, "--trace") {
        match JsonlSink::create(&path) {
            Ok(sink) => {
                bus.add(Arc::new(sink));
            }
            Err(e) => eprintln!("warning: cannot create trace file {path:?}: {e}"),
        }
    }
    if rest.iter().any(|a| a == "--progress") {
        bus.add(Arc::new(ProgressReporter::stderr()));
    }
    bus
}

fn cmd_tune(rest: &[String]) -> i32 {
    if let Err(e) = reject_unknown_flags("tune", rest, 1, TUNE_FLAGS) {
        eprintln!("{e}\n");
        return usage(2);
    }
    let Some(name) = rest.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("tune: missing workload name");
        return 2;
    };
    let Some(workload) = workload_by_name(name) else {
        eprintln!("unknown workload {name:?} (see `jtune workloads`)");
        return 2;
    };
    let opts = match tuner_options_from(rest) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("tune: invalid options: {e}\n");
            return usage(2);
        }
    };
    let minimize = rest.iter().any(|a| a == "--minimize");
    let json_out = rest.iter().any(|a| a == "--json");
    let bus = telemetry_from(rest);
    if !json_out {
        println!(
            "tuning {name} ({} budget, technique {}, {:?} manipulator)",
            opts.budget, opts.technique, opts.manipulator
        );
    }
    // Fault injection applies to the *tuning* run only; flag-impact
    // attribution below always measures fault-free.
    let spec = match executor_spec_from(workload, rest) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("tune: invalid options: {e}\n");
            return usage(2);
        }
    };
    let tuning_executor = spec.build();
    // Session errors (unreadable or mismatched --resume journal, bad
    // --technique) are operator errors, not bugs: report and exit 1.
    let result = match Tuner::new(opts).try_run(tuning_executor.as_ref(), name, &bus) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("tune: {e}");
            return 1;
        }
    };
    if json_out {
        println!("{}", result.session.to_json());
        return 0;
    }
    println!(
        "default {:.3}s -> best {:.3}s  ({:+.1}%)  [{} candidates]",
        result.session.default_secs,
        result.session.best_secs,
        result.improvement_percent(),
        result.session.evaluations
    );
    if minimize {
        println!("\nmeasuring marginal flag impacts (reverting one at a time)...");
        let impact_executor = spec.with_fault(None).build();
        let impacts = flag_impact(
            impact_executor.as_ref(),
            &result.best_config,
            ImpactOptions::default(),
        );
        println!("{:<44} {:>10}", "flag", "impact");
        for i in impacts.iter().filter(|i| i.impact_percent.abs() >= 0.75) {
            println!(
                "{:<44} {:>9.1}%",
                format!("{}={}", i.name, i.value),
                i.impact_percent
            );
        }
        let hitch = impacts
            .iter()
            .filter(|i| i.impact_percent.abs() < 0.75)
            .count();
        println!("(+ {hitch} inert hitchhiker flags omitted)");
    } else {
        println!("\nrecommended flags:");
        for f in &result.session.best_delta {
            println!("  {f}");
        }
    }
    0
}

fn cmd_suite(rest: &[String]) -> i32 {
    if let Err(e) = reject_unknown_flags("suite", rest, 1, TUNE_FLAGS) {
        eprintln!("{e}\n");
        return usage(2);
    }
    let Some(which) = rest.first() else {
        eprintln!("suite: expected `spec` or `dacapo`");
        return 2;
    };
    let workloads = match which.as_str() {
        "spec" => specjvm2008_startup(),
        "dacapo" => dacapo(),
        other => {
            eprintln!("unknown suite {other:?}");
            return 2;
        }
    };
    let base = match tuner_options_from(rest) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("suite: invalid options: {e}\n");
            return usage(2);
        }
    };
    let json_out = rest.iter().any(|a| a == "--json");
    let bus = telemetry_from(rest);
    let mut improvements = Vec::new();
    let mut records = Vec::new();
    if !json_out {
        println!(
            "{:<22} {:>10} {:>10} {:>12}",
            "program", "default(s)", "tuned(s)", "improvement"
        );
    }
    for (i, workload) in workloads.into_iter().enumerate() {
        let name = workload.name.clone();
        let mut opts = base.clone();
        opts.seed ^= (i as u64 + 1) << 32;
        let executor = match executor_spec_from(workload, rest) {
            Ok(spec) => spec.build(),
            Err(e) => {
                eprintln!("suite: invalid options: {e}\n");
                return usage(2);
            }
        };
        let result = match Tuner::new(opts).try_run(executor.as_ref(), &name, &bus) {
            Ok(result) => result,
            Err(e) => {
                eprintln!("suite: {e}");
                return 1;
            }
        };
        improvements.push(result.improvement_percent());
        if json_out {
            records.push(result.session.to_json());
            continue;
        }
        println!(
            "{:<22} {:>10.2} {:>10.2} {:>11.1}%",
            name,
            result.session.default_secs,
            result.session.best_secs,
            result.improvement_percent()
        );
    }
    if json_out {
        println!("{}", json::array_of(&records));
        return 0;
    }
    let s = Summary::from_slice(&improvements);
    println!(
        "\naverage {:+.1}%  (min {:+.1}%, max {:+.1}%)",
        s.mean(),
        s.min(),
        s.max()
    );
    0
}

fn cmd_serve(rest: &[String]) -> i32 {
    const SERVE_FLAGS: &[(&str, bool)] = &[
        ("--listen", true),
        ("--capacity", true),
        ("--queue", true),
        ("--slots", true),
        ("--state-dir", true),
        ("--spans", false),
        ("--lease-ms", true),
        ("--io-timeout-ms", true),
        ("--max-frame", true),
        ("--conn-limit", true),
        ("--net-fault-rate", true),
        ("--net-fault-seed", true),
    ];
    if let Err(e) = reject_unknown_flags("serve", rest, 0, SERVE_FLAGS) {
        eprintln!("{e}\n");
        return usage(2);
    }
    let listen = parse_opt(rest, "--listen").unwrap_or_else(|| "127.0.0.1:7171".to_string());
    let state_dir = parse_opt(rest, "--state-dir").unwrap_or_else(|| "jtune-state".to_string());
    let mut config = hotspot_autotuner::server::ServerConfig::new(state_dir);
    // An explicit --capacity without --queue keeps the historical
    // bound: queue defaults to capacity so `capacity + queue` scales
    // with the operator's intent.
    let parsed = (|| -> Result<(), String> {
        if let Some(n) = parse_value(rest, "--capacity", "an integer")? {
            config.capacity = n;
            config.queue = n;
        }
        if let Some(n) = parse_value(rest, "--queue", "an integer")? {
            config.queue = n;
        }
        if let Some(n) = parse_value(rest, "--slots", "an integer")? {
            config.slots = n;
        }
        if let Some(ms) = parse_value(rest, "--lease-ms", "an integer")? {
            config.lease_ms = ms;
        }
        if let Some(ms) = parse_value(rest, "--io-timeout-ms", "an integer")? {
            config.io_timeout_ms = ms;
        }
        if let Some(bytes) = parse_value(rest, "--max-frame", "an integer")? {
            if bytes == 0 {
                return Err("--max-frame must be at least 1".to_string());
            }
            config.max_frame = bytes;
        }
        if let Some(n) = parse_value(rest, "--conn-limit", "an integer")? {
            config.conn_limit = n;
        }
        if let Some(rate) = parse_value::<f64>(rest, "--net-fault-rate", "a number")? {
            if rate > 0.0 {
                let seed =
                    parse_value(rest, "--net-fault-seed", "an integer")?.unwrap_or(0xC4_05);
                config.net_faults =
                    hotspot_autotuner::server::NetFaultPlan::chaotic(rate, seed);
            }
        }
        Ok(())
    })();
    if let Err(e) = parsed {
        eprintln!("serve: invalid options: {e}\n");
        return usage(2);
    }
    config.spans = rest.iter().any(|a| a == "--spans");
    let listener = match std::net::TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("serve: cannot listen on {listen}: {e}");
            return 1;
        }
    };
    let server = match hotspot_autotuner::server::TuneServer::new(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot open state dir: {e}");
            return 1;
        }
    };
    // Print the bound address (matters with `--listen 127.0.0.1:0`) so
    // scripts and tests can discover the ephemeral port.
    match listener.local_addr() {
        Ok(addr) => {
            use std::io::Write as _;
            println!("listening on {addr}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("serve: cannot read bound address: {e}");
            return 1;
        }
    }
    match server.serve(listener) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("serve: {e}");
            1
        }
    }
}

fn cmd_worker(rest: &[String]) -> i32 {
    const WORKER_FLAGS: &[(&str, bool)] = &[
        ("--connect", true),
        ("--slots", true),
        ("--wait-ms", true),
        ("--retries", true),
        ("--retry-max-ms", true),
        ("--net-fault-rate", true),
        ("--net-fault-seed", true),
    ];
    if let Err(e) = reject_unknown_flags("worker", rest, 0, WORKER_FLAGS) {
        eprintln!("{e}\n");
        return usage(2);
    }
    let Some(addr) = parse_opt(rest, "--connect") else {
        eprintln!("worker: missing --connect HOST:PORT");
        return 2;
    };
    let mut options = hotspot_autotuner::server::WorkerOptions::new(addr);
    let parsed = (|| -> Result<(), String> {
        if let Some(n) = parse_value(rest, "--slots", "an integer")? {
            options.slots = n;
        }
        if let Some(ms) = parse_value(rest, "--wait-ms", "an integer")? {
            options.wait_ms = ms;
        }
        if let Some(n) = parse_value(rest, "--retries", "an integer")? {
            options.retries = n;
        }
        if let Some(ms) = parse_value(rest, "--retry-max-ms", "an integer")? {
            options.retry_max_ms = ms;
        }
        if let Some(rate) = parse_value::<f64>(rest, "--net-fault-rate", "a number")? {
            if rate > 0.0 {
                let seed =
                    parse_value(rest, "--net-fault-seed", "an integer")?.unwrap_or(0xC4_05);
                options.net_faults =
                    hotspot_autotuner::server::NetFaultPlan::chaotic(rate, seed);
            }
        }
        Ok(())
    })();
    if let Err(e) = parsed {
        eprintln!("worker: invalid options: {e}\n");
        return usage(2);
    }
    if options.slots == 0 {
        eprintln!("worker: --slots must be at least 1");
        return 2;
    }
    println!(
        "worker connecting to {} ({} slot{})",
        options.addr,
        options.slots,
        if options.slots == 1 { "" } else { "s" }
    );
    // Run until the daemon drains (clean exit). A dropped connection
    // is retried with jittered backoff per --retries/--retry-max-ms;
    // exit 1 means a whole reconnect budget was exhausted without
    // registering.
    match hotspot_autotuner::server::run_worker(&options) {
        Ok(stats) => {
            println!(
                "worker {} drained: {} completed, {} failed",
                stats.wid, stats.completed, stats.failed
            );
            0
        }
        Err(e) => {
            eprintln!("worker: {e}");
            1
        }
    }
}

fn cmd_client(rest: &[String]) -> i32 {
    use hotspot_autotuner::harness::{BackoffPolicy, RetryPolicy};
    use hotspot_autotuner::server::{with_retries, SessionSpec};

    let Some(sub) = rest.first() else {
        eprintln!("client: expected submit|status|watch|result|cancel|stats|shutdown");
        return 2;
    };
    let rest = &rest[1..];
    const CLIENT_FLAGS: &[(&str, bool)] = &[
        ("--addr", true),
        ("--budget", true),
        ("--seed", true),
        ("--max-evals", true),
        ("--screen-ratio", true),
        ("--technique", true),
        ("--no-drain", false),
        ("--retries", true),
        ("--retry-max-ms", true),
    ];
    // submit takes a workload positional; watch/result/cancel a session
    // ID; status/stats an optional session ID; shutdown none.
    let positionals = usize::from(sub != "shutdown");
    if let Err(e) = reject_unknown_flags(&format!("client {sub}"), rest, positionals, CLIENT_FLAGS)
    {
        eprintln!("{e}\n");
        return usage(2);
    }
    let addr = parse_opt(rest, "--addr").unwrap_or_else(|| "127.0.0.1:7171".to_string());
    // --retries 0 (the default) preserves single-shot behaviour; with
    // retries on, `overloaded` rejections and connection failures back
    // off (jittered exponential, capped by --retry-max-ms, floored by
    // the daemon's retry_after_ms hint) and try again.
    let policy = match (|| -> Result<BackoffPolicy, String> {
        Ok(BackoffPolicy {
            retry: RetryPolicy {
                max_retries: parse_value(rest, "--retries", "an integer")?.unwrap_or(0),
                backoff: 2.0,
            },
            base_ms: 100,
            cap_ms: parse_value::<u64>(rest, "--retry-max-ms", "an integer")?
                .unwrap_or(5_000)
                .max(1),
            seed: 0,
        })
    })() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("client {sub}: invalid options: {e}\n");
            return usage(2);
        }
    };
    let positional = rest.first().filter(|a| !a.starts_with("--"));
    let sid_arg = || -> Result<u64, String> {
        positional
            .ok_or_else(|| format!("client {sub}: missing session ID"))?
            .parse()
            .map_err(|_| format!("client {sub}: session ID must be an integer"))
    };
    let outcome = match sub.as_str() {
        "submit" => (|| -> Result<(), String> {
            let program = positional.ok_or("client submit: missing workload name")?;
            let mut spec = SessionSpec::new(program.clone());
            if let Some(mins) = parse_value(rest, "--budget", "a whole number of minutes")? {
                spec.budget_mins = mins;
            }
            if let Some(seed) = parse_value(rest, "--seed", "an integer")? {
                spec.seed = seed;
            }
            spec.max_evaluations = parse_value(rest, "--max-evals", "an integer")?;
            spec.screen_ratio = parse_value(rest, "--screen-ratio", "a number")?;
            spec.technique = parse_opt(rest, "--technique");
            // Not idempotent: a submit cut off mid-flight may already
            // be admitted, so only `overloaded`/connect failures retry.
            let sid = with_retries(&addr, &policy, false, |client| client.submit(spec.clone()))
                .map_err(|e| e.to_string())?;
            println!("{sid}");
            Ok(())
        })(),
        "status" => (|| -> Result<(), String> {
            let sid = match positional {
                Some(_) => Some(sid_arg()?),
                None => None,
            };
            let line = with_retries(&addr, &policy, true, |client| {
                client.round_trip_raw(&hotspot_autotuner::server::Request::Status { sid })
            })
            .map_err(|e| e.to_string())?;
            println!("{line}");
            Ok(())
        })(),
        "stats" => (|| -> Result<(), String> {
            let sid = match positional {
                Some(_) => Some(sid_arg()?),
                None => None,
            };
            let line = with_retries(&addr, &policy, true, |client| {
                client.round_trip_raw(&hotspot_autotuner::server::Request::Stats { sid })
            })
            .map_err(|e| e.to_string())?;
            println!("{line}");
            Ok(())
        })(),
        "watch" => sid_arg().and_then(|sid| {
            // Streaming: replaying a half-watched session would repeat
            // events, so only connect failures/overloaded retry.
            with_retries(&addr, &policy, false, |client| {
                client.watch(sid, |event| println!("{event}")).map(|_| ())
            })
            .map_err(|e| e.to_string())
        }),
        "result" => sid_arg().and_then(|sid| {
            with_retries(&addr, &policy, true, |client| client.result(sid))
                .map(|record| println!("{record}"))
                .map_err(|e| e.to_string())
        }),
        "cancel" => sid_arg().and_then(|sid| {
            with_retries(&addr, &policy, false, |client| client.cancel(sid))
                .map(|()| println!("cancelled {sid}"))
                .map_err(|e| e.to_string())
        }),
        "shutdown" => {
            let drain = !rest.iter().any(|a| a == "--no-drain");
            with_retries(&addr, &policy, false, |client| client.shutdown(drain))
                .map(|()| println!("shutdown acknowledged (drain: {drain})"))
                .map_err(|e| e.to_string())
        }
        other => {
            eprintln!("client: unknown subcommand {other:?}\n");
            return usage(2);
        }
    };
    match outcome {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("client {sub}: {e}");
            1
        }
    }
}

fn cmd_report(rest: &[String]) -> i32 {
    const REPORT_FLAGS: &[(&str, bool)] = &[("--format", true), ("--out", true)];
    if let Err(e) = reject_unknown_flags("report", rest, 1, REPORT_FLAGS) {
        eprintln!("{e}\n");
        return usage(2);
    }
    let Some(input) = rest.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("report: missing input (a trace file, session/experiment/state directory)");
        return 2;
    };
    let format: hotspot_autotuner::report::Format = match parse_opt(rest, "--format")
        .as_deref()
        .unwrap_or("md")
        .parse()
    {
        Ok(f) => f,
        Err(e) => {
            eprintln!("report: {e}");
            return 2;
        }
    };
    let report = match hotspot_autotuner::report::load(std::path::Path::new(input)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("report: {e}");
            return 1;
        }
    };
    let rendered = hotspot_autotuner::report::render(&report, format);
    match parse_opt(rest, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, rendered) {
                eprintln!("report: cannot write {path}: {e}");
                return 1;
            }
        }
        None => print!("{rendered}"),
    }
    0
}

fn cmd_simulate(rest: &[String]) -> i32 {
    let Some(name) = rest.first() else {
        eprintln!("simulate: missing workload name");
        return 2;
    };
    let Some(workload) = workload_by_name(name) else {
        eprintln!("unknown workload {name:?}");
        return 2;
    };
    let registry = hotspot_registry();
    let flag_args: Vec<String> = rest[1..]
        .iter()
        .filter(|a| *a != "--gclog")
        .cloned()
        .collect();
    let config = match JvmConfig::parse_args(registry, &flag_args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bad flags: {e}");
            return 2;
        }
    };
    let gclog = rest.iter().any(|a| a == "--gclog");
    let executor = SimExecutor::new(workload);
    let outcome = executor.run_full(&config, 1);
    if gclog {
        let machine = hotspot_autotuner::jvmsim::Machine::default();
        match hotspot_autotuner::jvmsim::FlagView::resolve(registry, &config, &machine) {
            Ok((view, _)) => print!(
                "{}",
                hotspot_autotuner::jvmsim::gclog::render(&outcome, view.collector)
            ),
            // The VM refused to start (e.g. conflicting collector
            // selections): there is no collector to render a log for.
            Err(e) => eprintln!("run FAILED: {e}"),
        }
        return if outcome.ok() { 0 } else { 1 };
    }
    if let Some(f) = &outcome.failure {
        println!("run FAILED: {f}");
        return 1;
    }
    println!("total      {}", outcome.total);
    println!("startup    {}", outcome.breakdown.startup);
    println!("mutator    {}", outcome.breakdown.mutator);
    println!(
        "gc pauses  {} ({} young, {} full, p99 {})",
        outcome.breakdown.gc_pause,
        outcome.gc.young_collections,
        outcome.gc.full_collections,
        outcome.gc.pauses.percentile(99.0)
    );
    println!("gc drag    {}", outcome.breakdown.gc_concurrent_drag);
    println!(
        "jit stalls {} ({} C1 + {} C2 compiles, {:.0}% of work at C2)",
        outcome.breakdown.jit_stall,
        outcome.jit.c1_compiles,
        outcome.jit.c2_compiles,
        outcome.jit.c2_work_fraction * 100.0
    );
    println!("peak heap  {:.1} MB", outcome.peak_heap / 1e6);
    for w in &outcome.warnings {
        println!("warning: {w}");
    }
    0
}

fn cmd_flags(rest: &[String]) -> i32 {
    use std::io::Write as _;
    let registry = hotspot_registry();
    let filter = rest.first().map(String::as_str).unwrap_or("");
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut shown = 0;
    for (_, spec) in registry.iter() {
        if !filter.is_empty() && !spec.name.to_lowercase().contains(&filter.to_lowercase()) {
            continue;
        }
        shown += 1;
        // Ignore write errors: a closed pipe (`jtune flags | head`) is a
        // normal way to consume this listing.
        if writeln!(
            out,
            "{:<40} {:<22} default={:<12} {}",
            spec.name,
            spec.category.name(),
            spec.default.to_string(),
            spec.desc
        )
        .is_err()
        {
            return 0;
        }
    }
    let _ = writeln!(out, "\n{shown} of {} flags shown", registry.len());
    0
}

fn cmd_tree() -> i32 {
    use std::io::Write as _;
    let registry = hotspot_registry();
    let tree = hotspot_tree();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    // Ignore write errors: a closed pipe (`jtune tree | head`) is a
    // normal way to consume this listing.
    if write!(out, "{}", tree.render_skeleton(registry)).is_err() {
        return 0;
    }
    let stats = SpaceStats::compute(tree, registry);
    let _ = writeln!(
        out,
        "\nflat space: 10^{:.0} configurations over {} tunable flags",
        stats.flat_log10, stats.tunable_flags
    );
    let _ = writeln!(
        out,
        "hierarchical space: 10^{:.0}  (10^{:.0} smaller)",
        stats.hierarchical_log10,
        stats.reduction_log10()
    );
    0
}

fn cmd_workloads() -> i32 {
    use std::io::Write as _;
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let _ = writeln!(out, "SPECjvm2008 startup (16):");
    for w in specjvm2008_startup() {
        if writeln!(
            out,
            "  spec:{:<22} work {:>8.1e}  live {:>5.0} MB  {} threads",
            w.name,
            w.total_work,
            w.live_set / 1e6,
            w.threads
        )
        .is_err()
        {
            return 0;
        }
    }
    let _ = writeln!(out, "DaCapo (13):");
    for w in dacapo() {
        if writeln!(
            out,
            "  dacapo:{:<20} work {:>8.1e}  live {:>5.0} MB  {} threads",
            w.name,
            w.total_work,
            w.live_set / 1e6,
            w.threads
        )
        .is_err()
        {
            return 0;
        }
    }
    0
}
