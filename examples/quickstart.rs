//! Quickstart: tune one benchmark and inspect what the tuner found.
//!
//! ```sh
//! cargo run --release --example quickstart [program] [budget-minutes]
//! ```
//!
//! `program` is any built-in workload name (`compress`, `serial`,
//! `dacapo:h2`, …; default `serial`), `budget-minutes` the virtual tuning
//! budget (default 30; the paper uses 200).

use hotspot_autotuner::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let program = args.next().unwrap_or_else(|| "serial".to_string());
    let budget_mins: u64 = args.next().and_then(|b| b.parse().ok()).unwrap_or(30);

    let Some(workload) = workload_by_name(&program) else {
        eprintln!("unknown workload {program:?}; try one of:");
        for w in specjvm2008_startup() {
            eprint!("  spec:{}", w.name);
        }
        eprintln!();
        for w in dacapo() {
            eprint!("  dacapo:{}", w.name);
        }
        eprintln!();
        std::process::exit(2);
    };

    println!(
        "tuning {program} for {budget_mins} virtual minutes \
         (workload: {:.1e} work units, {} threads, live set {:.0} MB)",
        workload.total_work,
        workload.threads,
        workload.live_set / 1e6
    );

    let executor = SimExecutor::new(workload);
    let opts = TunerOptions::builder()
        .budget(SimDuration::from_mins(budget_mins))
        .build()
        .expect("valid options");
    let result = Tuner::new(opts).run(&executor, &program, &TelemetryBus::disabled());

    let s = &result.session;
    println!();
    println!("default configuration : {:>8.3} s", s.default_secs);
    println!("best found            : {:>8.3} s", s.best_secs);
    println!(
        "improvement           : {:+.1}%",
        result.improvement_percent()
    );
    println!("candidates evaluated  : {}", s.evaluations);
    println!();
    println!("best flag settings (what you would pass to java):");
    if s.best_delta.is_empty() {
        println!("  (the default configuration was never beaten)");
    }
    for flag in &s.best_delta {
        println!("  {flag}");
    }
}
