//! Characterise your own application and tune the JVM for it — the
//! downstream-user scenario: you know roughly how your service behaves
//! (allocation rate, live set, threads, lock contention), you want a flag
//! recommendation.
//!
//! Also demonstrates inspecting the flag hierarchy and replaying the best
//! configuration with full GC/JIT statistics.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use hotspot_autotuner::prelude::*;

fn main() {
    // A hypothetical order-matching service: 8 worker threads, 2 GB/s-ish
    // allocation of small short-lived objects, a 1.5 GB in-memory book,
    // contended hot locks on the matching engine.
    let mut workload = Workload::baseline("order-matcher");
    workload.total_work = 1.2e10;
    workload.threads = 8;
    workload.alloc_rate = 2.4;
    workload.live_set = 1.5e9;
    workload.nursery_survival = 0.08;
    workload.lock_density = 0.006;
    workload.lock_contention = 0.4;
    workload.classes_loaded = 14_000;
    workload.hot_methods = 900;

    // A bigger box than the default 8-core desktop.
    let machine = Machine::big_server();
    let executor = SimExecutor::on_machine(workload, machine);

    // Where does the default configuration lose time?
    let registry = hotspot_registry();
    let default_outcome = executor.run_full(&JvmConfig::default_for(registry), 1);
    println!("default configuration behaviour:");
    println!("  total        {}", default_outcome.total);
    println!("  gc pauses    {}", default_outcome.breakdown.gc_pause);
    println!(
        "  young / full {} / {}",
        default_outcome.gc.young_collections, default_outcome.gc.full_collections
    );
    println!(
        "  c2 coverage  {:.0}%",
        default_outcome.jit.c2_work_fraction * 100.0
    );
    if let Some(f) = &default_outcome.failure {
        println!("  FAILED: {f} — the default heap cannot hold the live set");
    }

    // Tune for half an hour of virtual time, with trial memoization on:
    // revisited configurations are free, stretching the budget.
    let opts = TunerOptions::builder()
        .budget(SimDuration::from_mins(30))
        .cache(CachePolicy::default())
        .build()
        .expect("valid options");
    let result = Tuner::new(opts).run(&executor, "order-matcher", &TelemetryBus::disabled());
    println!(
        "\ntuned: {:+.1}% improvement over default",
        result.improvement_percent()
    );
    println!("recommended java flags:");
    for flag in &result.session.best_delta {
        println!("  {flag}");
    }

    // Replay the winner for a full report.
    let tuned_outcome = executor.run_full(&result.best_config, 1);
    println!("\ntuned configuration behaviour:");
    println!("  total        {}", tuned_outcome.total);
    println!("  gc pauses    {}", tuned_outcome.breakdown.gc_pause);
    println!(
        "  young / full {} / {}",
        tuned_outcome.gc.young_collections, tuned_outcome.gc.full_collections
    );
    println!(
        "  c2 coverage  {:.0}%",
        tuned_outcome.jit.c2_work_fraction * 100.0
    );

    // Which structural branch did the tuner pick? Ask the hierarchy.
    let tree = hotspot_tree();
    for sid in tree.selector_ids() {
        let sel = tree.selector(sid);
        let chosen = sel.options[tree.selector_state(sid, &result.best_config)].label;
        println!("  {} -> {chosen}", sel.name);
    }
}
