//! Latency tuning: optimise for tail GC pauses instead of run time —
//! the service-owner scenario the paper's throughput objective doesn't
//! cover, built from the same machinery by swapping the objective.
//!
//! ```sh
//! cargo run --release --example pause_tuning
//! ```

use hotspot_autotuner::harness::Objective;
use hotspot_autotuner::prelude::*;

fn service_workload() -> Workload {
    // A request-serving workload: moderate allocation over a sizeable
    // session cache. Throughput tuning will happily pick huge young
    // generations whose scavenges stop the world for a long time.
    let mut w = Workload::baseline("latency-service");
    w.total_work = 8e9;
    w.threads = 8;
    w.alloc_rate = 2.0;
    w.live_set = 450e6;
    w.nursery_survival = 0.10;
    w
}

fn tune(objective: Objective) -> (String, TuningResult) {
    let opts = TunerOptions::builder()
        .budget(SimDuration::from_mins(40))
        .protocol(Protocol {
            objective,
            ..Protocol::default()
        })
        .build()
        .expect("valid options");
    let executor = SimExecutor::new(service_workload());
    let result = Tuner::new(opts).run(&executor, "latency-service", &TelemetryBus::disabled());
    (objective.name(), result)
}

fn main() {
    let registry = hotspot_registry();
    let executor = SimExecutor::new(service_workload());

    println!("objective              total      p99 pause  collector");
    println!("---------              -----      ---------  ---------");
    let report = |label: &str, config: &JvmConfig| {
        let outcome = executor.run_full(config, 7);
        let tree = hotspot_tree();
        let gc = tree
            .selector_ids()
            .find(|s| tree.selector(*s).name == "gc.collector")
            .map(|s| tree.selector(s).options[tree.selector_state(s, config)].label)
            .unwrap_or("?");
        println!(
            "{label:<22} {:>8}  {:>10}  {gc}",
            outcome.total.to_string(),
            outcome.gc.pauses.percentile(99.0).to_string(),
        );
    };

    report("default", &JvmConfig::default_for(registry));
    for objective in [
        Objective::Throughput,
        Objective::PausePercentile(99.0),
        Objective::Weighted {
            percentile: 99.0,
            weight: 0.3,
        },
    ] {
        let (name, result) = tune(objective);
        report(&name, &result.best_config);
    }
    println!();
    println!("throughput tuning minimises total time and tolerates long pauses;");
    println!("pause tuning accepts a slower run for a flatter pause profile;");
    println!("the weighted objective sits between them.");
}
