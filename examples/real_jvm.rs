//! Tune a **real** `java` process — the paper's actual mode of operation.
//!
//! Requires a JDK on `PATH` (or pass the path to `java` as the first
//! argument). The benchmark command line defaults to `-version` (a
//! startup-only "workload", so the tuner optimises JVM start-up time);
//! pass your own after `--`:
//!
//! ```sh
//! cargo run --release --example real_jvm -- /usr/bin/java -- -jar dacapo.jar h2
//! ```
//!
//! Measurements are real wall-clock time, so give this real minutes of
//! budget. Note: the built-in registry models JDK-7-era flags; modern JDKs
//! reject removed flags, which the tuner observes as crashed candidates
//! and steers away from — wasteful but safe.

use hotspot_autotuner::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (java, bench_args): (Option<String>, Vec<String>) = match args.split_first() {
        Some((first, rest)) if first != "--" => {
            let rest: Vec<String> = rest.iter().filter(|a| *a != "--").cloned().collect();
            (Some(first.clone()), rest)
        }
        _ => (None, args.into_iter().filter(|a| a != "--").collect()),
    };
    let bench_args = if bench_args.is_empty() {
        vec!["-version".to_string()]
    } else {
        bench_args
    };

    let executor = match java {
        Some(path) => ProcessExecutor::new(path, bench_args),
        None => match ProcessExecutor::from_path(bench_args) {
            Some(ex) => ex,
            None => {
                eprintln!("no `java` found on PATH; running the simulator instead");
                let opts = TunerOptions::builder()
                    .budget(SimDuration::from_mins(10))
                    .build()
                    .expect("valid options");
                let result = Tuner::new(opts).run(
                    &SimExecutor::new(workload_by_name("compress").unwrap()),
                    "compress",
                    &TelemetryBus::disabled(),
                );
                println!("simulated fallback: {:+.1}%", result.improvement_percent());
                return;
            }
        },
    };

    // Short real-time budget for a demo; the paper used 200 minutes.
    // Racing pays off most on a real JVM, where every repeat costs real
    // wall clock: hopeless candidates are cut off after 2 of 3 runs.
    let opts = TunerOptions::builder()
        .budget(SimDuration::from_mins(2))
        .workers(1) // one JVM at a time: parallel JVMs perturb each other
        .batch(4)
        .protocol(Protocol {
            repeats: 3,
            fail_fast: true,
            ..Protocol::default()
        })
        .racing(Racing::default())
        .build()
        .expect("valid options");
    println!("tuning a real JVM for 2 minutes of wall clock...");
    let result = Tuner::new(opts).run(&executor, "real-jvm", &TelemetryBus::disabled());
    println!(
        "default {:.3}s -> best {:.3}s ({:+.1}%) over {} candidates",
        result.session.default_secs,
        result.session.best_secs,
        result.improvement_percent(),
        result.session.evaluations
    );
    println!("best flags:");
    for flag in &result.session.best_delta {
        println!("  {flag}");
    }
}
