//! Tune a whole benchmark suite and print the paper-style results table —
//! the scenario the paper's evaluation section is built from.
//!
//! ```sh
//! cargo run --release --example tune_suite [spec|dacapo] [budget-minutes]
//! ```

use hotspot_autotuner::prelude::*;
use hotspot_autotuner::util::stats::Summary;

fn main() {
    let mut args = std::env::args().skip(1);
    let suite = args.next().unwrap_or_else(|| "spec".to_string());
    let budget_mins: u64 = args.next().and_then(|b| b.parse().ok()).unwrap_or(20);

    let workloads = match suite.as_str() {
        "spec" => specjvm2008_startup(),
        "dacapo" => dacapo(),
        other => {
            eprintln!("unknown suite {other:?}: use `spec` or `dacapo`");
            std::process::exit(2);
        }
    };

    println!("suite: {suite}, budget {budget_mins} min/program (paper: 200)\n");
    println!(
        "{:<22} {:>10} {:>10} {:>12}",
        "program", "default(s)", "tuned(s)", "improvement"
    );
    let mut improvements = Vec::new();
    for (i, workload) in workloads.into_iter().enumerate() {
        let name = workload.name.clone();
        let executor = SimExecutor::new(workload);
        let opts = TunerOptions::builder()
            .budget(SimDuration::from_mins(budget_mins))
            .seed(0xBEEF ^ ((i as u64) << 16))
            .build()
            .expect("valid options");
        let result = Tuner::new(opts).run(&executor, &name, &TelemetryBus::disabled());
        let imp = result.improvement_percent();
        improvements.push(imp);
        println!(
            "{:<22} {:>10.2} {:>10.2} {:>11.1}%",
            name, result.session.default_secs, result.session.best_secs, imp
        );
    }
    let summary = Summary::from_slice(&improvements);
    println!(
        "\naverage improvement {:.1}%  (min {:.1}%, max {:.1}%)",
        summary.mean(),
        summary.min(),
        summary.max()
    );
}
