//! Daemon end-to-end test through the real binary: start `jtune serve`
//! on an ephemeral port, run three concurrent sessions through
//! `jtune client`, kill the daemon mid-run, restart it on the same
//! state dir, and require every resumed trace and result to be
//! byte-identical to the uninterrupted one-shot run.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn jtune() -> Command {
    Command::new(env!("CARGO_BIN_EXE_jtune"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jtune-daemon-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

struct Daemon {
    child: Child,
    addr: String,
}

fn start_daemon(state_dir: &Path) -> Daemon {
    start_daemon_with(state_dir, &[])
}

fn start_daemon_with(state_dir: &Path, extra: &[&str]) -> Daemon {
    let mut child = jtune()
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--state-dir",
            state_dir.to_str().expect("utf8 path"),
            "--slots",
            "2",
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn daemon");
    let stdout = child.stdout.take().expect("daemon stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read bound address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected daemon banner: {line:?}"))
        .to_string();
    Daemon { child, addr }
}

fn client(addr: &str, args: &[&str]) -> std::process::Output {
    jtune()
        .arg("client")
        .args(args)
        .args(["--addr", addr])
        .output()
        .expect("run client")
}

/// `client result` polled until the session completes; returns the raw
/// record line.
fn await_result(addr: &str, sid: &str) -> String {
    let start = Instant::now();
    loop {
        let out = client(addr, &["result", sid]);
        if out.status.success() {
            return String::from_utf8(out.stdout)
                .expect("utf8 record")
                .trim_end()
                .to_string();
        }
        assert!(
            start.elapsed() < Duration::from_secs(120),
            "session {sid} did not complete: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// The uninterrupted one-shot equivalent of a daemon session: same
/// budget/seed, checkpointing on (the daemon always journals), traced.
/// Returns (trace bytes, record line).
fn one_shot(dir: &Path, seed: &str, budget: &str) -> (String, String) {
    let trace = dir.join("trace.jsonl");
    let out = jtune()
        .args([
            "tune",
            "compress",
            "--budget",
            budget,
            "--seed",
            seed,
            "--checkpoint",
            dir.join("journal.jsonl").to_str().expect("utf8"),
            "--trace",
            trace.to_str().expect("utf8"),
            "--json",
        ])
        .output()
        .expect("one-shot run");
    assert!(
        out.status.success(),
        "one-shot failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        std::fs::read_to_string(&trace).expect("one-shot trace"),
        String::from_utf8(out.stdout)
            .expect("utf8 record")
            .trim_end()
            .to_string(),
    )
}

#[test]
fn remote_workers_produce_byte_identical_results_through_the_binary() {
    let root = temp_dir("workers-cli");
    let state = root.join("state");
    let mut daemon = start_daemon(&state);

    // Two worker processes attach over TCP.
    let mut workers: Vec<Child> = [
        vec!["worker", "--connect", daemon.addr.as_str()],
        vec!["worker", "--connect", daemon.addr.as_str(), "--slots", "2"],
    ]
    .into_iter()
    .map(|args| {
        jtune()
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn worker")
    })
    .collect();

    // Wait until both registrations show up in the daemon stats.
    let start = Instant::now();
    loop {
        let out = client(&daemon.addr, &["stats"]);
        assert!(out.status.success());
        if String::from_utf8_lossy(&out.stdout).contains("\"workers_registered\":2") {
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "workers never registered"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    let out = client(
        &daemon.addr,
        &["submit", "compress", "--budget", "10", "--seed", "77"],
    );
    assert!(
        out.status.success(),
        "submit failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let sid = String::from_utf8(out.stdout)
        .expect("utf8 sid")
        .trim()
        .to_string();
    let record = await_result(&daemon.addr, &sid);

    // Trials really ran on the workers.
    let stats = client(&daemon.addr, &["stats"]);
    assert!(stats.status.success());
    let stats_line = String::from_utf8_lossy(&stats.stdout).into_owned();
    assert!(
        !stats_line.contains("\"trials_leased\":0"),
        "no trial was leased to a worker: {stats_line}"
    );
    assert!(stats_line.contains("\"trials_leased\":"), "{stats_line}");

    // Byte-identical to the uninterrupted single-host run.
    let reference = temp_dir("workers-cli-ref");
    let (want_trace, want_record) = one_shot(&reference, "77", "10");
    let got_trace =
        std::fs::read_to_string(state.join(&sid).join("trace.jsonl")).expect("session trace");
    assert_eq!(got_trace, want_trace, "distributed trace diverged");
    assert_eq!(record, want_record, "distributed record diverged");

    // Shutdown drains the workers: both exit 0 after reporting stats.
    let shutdown = client(&daemon.addr, &["shutdown", "--no-drain"]);
    assert!(shutdown.status.success());
    for worker in &mut workers {
        let status = worker.wait().expect("worker exit");
        assert!(status.success(), "worker exited non-zero: {status}");
    }
    daemon.child.wait().expect("daemon exit");
    let _ = std::fs::remove_dir_all(&reference);
    let _ = std::fs::remove_dir_all(&root);
}

/// The full chaos gauntlet through the real binary: a daemon with wire
/// deadlines, workers whose frames run through seeded fault plans, a
/// worker killed mid-run and replaced, and a retrying client — with the
/// session's trace and record still byte-identical to the undisturbed
/// one-shot run.
#[test]
fn chaos_run_with_worker_churn_matches_one_shot_byte_for_byte() {
    let root = temp_dir("chaos-cli");
    let state = root.join("state");
    let mut daemon = start_daemon_with(&state, &["--io-timeout-ms", "5000"]);

    let spawn_worker = |seed: &str| -> Child {
        jtune()
            .args([
                "worker",
                "--connect",
                daemon.addr.as_str(),
                "--net-fault-rate",
                "0.15",
                "--net-fault-seed",
                seed,
                "--retries",
                "10",
                "--retry-max-ms",
                "1000",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn worker")
    };
    let mut doomed = spawn_worker("48879");
    let mut steady = spawn_worker("51966");

    // Both registrations reach the daemon (chaos notwithstanding).
    let start = Instant::now();
    loop {
        let out = client(&daemon.addr, &["stats"]);
        assert!(out.status.success());
        if String::from_utf8_lossy(&out.stdout).contains("\"workers_registered\":2") {
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "workers never registered under chaos"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Submit through the retrying client path.
    let out = client(
        &daemon.addr,
        &[
            "submit", "compress", "--budget", "10", "--seed", "55", "--retries", "3",
        ],
    );
    assert!(
        out.status.success(),
        "submit failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let sid = String::from_utf8(out.stdout)
        .expect("utf8 sid")
        .trim()
        .to_string();

    // Worker churn: one worker dies mid-run and a replacement arrives.
    std::thread::sleep(Duration::from_millis(100));
    doomed.kill().expect("kill worker");
    doomed.wait().expect("reap worker");
    let mut replacement = spawn_worker("57005");

    let record = await_result(&daemon.addr, &sid);

    let reference = temp_dir("chaos-cli-ref");
    let (want_trace, want_record) = one_shot(&reference, "55", "10");
    let got_trace =
        std::fs::read_to_string(state.join(&sid).join("trace.jsonl")).expect("session trace");
    assert_eq!(got_trace, want_trace, "chaos trace diverged");
    assert_eq!(record, want_record, "chaos record diverged");

    // Shut down; the surviving workers may drain cleanly or exhaust
    // their reconnect budgets against the stopped daemon — either way
    // they must exit rather than wedge.
    let shutdown = client(&daemon.addr, &["shutdown", "--no-drain"]);
    assert!(shutdown.status.success());
    steady.wait().expect("steady worker exit");
    replacement.wait().expect("replacement worker exit");
    daemon.child.wait().expect("daemon exit");
    let _ = std::fs::remove_dir_all(&reference);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn killed_daemon_resumes_sessions_with_byte_identical_traces() {
    let root = temp_dir("kill-resume");
    let state = root.join("state");
    let budget = "600";
    let seeds = ["101", "202", "303"];

    let mut daemon = start_daemon(&state);
    let mut sids = Vec::new();
    for seed in seeds {
        let out = client(
            &daemon.addr,
            &["submit", "compress", "--budget", budget, "--seed", seed],
        );
        assert!(
            out.status.success(),
            "submit failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        sids.push(
            String::from_utf8(out.stdout)
                .expect("utf8 sid")
                .trim()
                .to_string(),
        );
    }

    // Status must list all three sessions.
    let status = client(&daemon.addr, &["status"]);
    assert!(status.status.success());
    let status_line = String::from_utf8_lossy(&status.stdout).into_owned();
    for sid in &sids {
        assert!(
            status_line.contains(&format!("\"sid\":{sid}")),
            "{status_line}"
        );
    }

    // Kill the daemon hard, mid-run: no drain, no clean checkpoint
    // boundary — the journals' torn tails must not matter.
    daemon.child.kill().expect("kill daemon");
    daemon.child.wait().expect("reap daemon");

    // Restart over the same state dir: sessions resume and finish.
    let mut daemon = start_daemon(&state);
    let records: Vec<String> = sids
        .iter()
        .map(|sid| await_result(&daemon.addr, sid))
        .collect();

    for (i, (sid, seed)) in sids.iter().zip(seeds).enumerate() {
        let reference = temp_dir(&format!("kill-resume-ref-{seed}"));
        let (want_trace, want_record) = one_shot(&reference, seed, budget);
        let got_trace =
            std::fs::read_to_string(state.join(sid).join("trace.jsonl")).expect("session trace");
        assert_eq!(
            got_trace, want_trace,
            "session {sid} (seed {seed}) trace diverged after kill+resume"
        );
        assert_eq!(
            records[i], want_record,
            "session {sid} (seed {seed}) record diverged after kill+resume"
        );
        let _ = std::fs::remove_dir_all(&reference);
    }

    let shutdown = client(&daemon.addr, &["shutdown", "--no-drain"]);
    assert!(shutdown.status.success());
    daemon.child.wait().expect("daemon exit");
    let _ = std::fs::remove_dir_all(&root);
}
