//! End-to-end telemetry contract tests: the event stream is
//! bit-deterministic for a given seed regardless of worker count, every
//! trial in the session record has a matching `TrialEvaluated` event, and
//! the budget charges in the stream account for the session's spent
//! budget exactly.

use std::sync::Arc;

use hotspot_autotuner::harness::SessionRecord;
use hotspot_autotuner::prelude::*;
use hotspot_autotuner::tuner::TuningResult;

/// Run one observed session and return (JSONL stream, events, result).
fn observed_session(workers: usize, seed: u64) -> (String, Vec<TraceEvent>, TuningResult) {
    let workload = workload_by_name("compress").expect("built-in workload");
    let executor = SimExecutor::new(workload);
    let opts = TunerOptions {
        budget: SimDuration::from_mins(2),
        seed,
        workers,
        batch: 8,
        ..TunerOptions::default()
    };
    let recorder = Arc::new(MemoryRecorder::new());
    let bus = TelemetryBus::new().with(recorder.clone());
    let result = Tuner::new(opts).run(&executor, "compress", &bus);
    (recorder.to_jsonl(), recorder.events(), result)
}

#[test]
fn event_stream_is_byte_identical_across_worker_counts() {
    let (serial, _, serial_result) = observed_session(1, 42);
    let (parallel, _, parallel_result) = observed_session(8, 42);
    assert_eq!(
        serial_result.session.to_tsv(),
        parallel_result.session.to_tsv()
    );
    assert_eq!(
        serial, parallel,
        "telemetry must not depend on thread interleaving"
    );
    assert!(!serial.is_empty());
}

#[test]
fn event_stream_is_byte_identical_across_reruns() {
    let (a, _, _) = observed_session(4, 7);
    let (b, _, _) = observed_session(4, 7);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_produce_different_streams() {
    let (a, _, _) = observed_session(1, 1);
    let (b, _, _) = observed_session(1, 2);
    assert_ne!(a, b);
}

/// Every trial in the session record has exactly one `TrialEvaluated`
/// event, with matching index, technique and score.
#[test]
fn every_trial_has_a_matching_evaluated_event() {
    let (_, events, result) = observed_session(2, 11);
    let session: &SessionRecord = &result.session;
    let evaluated: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::TrialEvaluated {
                index,
                technique,
                score_secs,
                ..
            } => Some((*index, technique.clone(), *score_secs)),
            _ => None,
        })
        .collect();
    assert_eq!(evaluated.len() as u64, session.evaluations);
    assert!(!session.trials.is_empty());
    for trial in &session.trials {
        let hits: Vec<_> = evaluated
            .iter()
            .filter(|(i, _, _)| *i == trial.index)
            .collect();
        assert_eq!(hits.len(), 1, "trial #{} events", trial.index);
        let (_, technique, score) = hits[0];
        assert_eq!(technique, &trial.technique, "trial #{}", trial.index);
        assert_eq!(*score, trial.score_secs, "trial #{}", trial.index);
    }
}

/// The per-trial budget charges in the stream sum to the session's spent
/// budget: `cost_secs` accumulates to the final `budget_spent_secs` and
/// to `SessionFinished.spent_secs`.
#[test]
fn budget_charges_sum_to_session_spent() {
    let (_, events, _) = observed_session(4, 5);
    let mut total_cost = 0.0;
    let mut last_spent = 0.0;
    for e in &events {
        if let TraceEvent::TrialEvaluated {
            cost_secs,
            budget_spent_secs,
            ..
        } = e
        {
            total_cost += cost_secs;
            last_spent = *budget_spent_secs;
            assert!(
                (total_cost - budget_spent_secs).abs() < 1e-6,
                "running charge mismatch: {total_cost} vs {budget_spent_secs}"
            );
        }
    }
    let finished = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::SessionFinished { spent_secs, .. } => Some(*spent_secs),
            _ => None,
        })
        .expect("SessionFinished event");
    assert!((finished - last_spent).abs() < 1e-6);
    assert!(total_cost > 0.0);
}

/// Session boundaries are present and ordered; exhaustion is reported at
/// most once and only after the budget was actually crossed.
#[test]
fn session_lifecycle_events_are_well_formed() {
    let (_, events, _) = observed_session(2, 3);
    assert!(matches!(
        events.first(),
        Some(TraceEvent::SessionStarted { .. })
    ));
    assert!(matches!(
        events.last(),
        Some(TraceEvent::SessionFinished { .. })
    ));
    let exhausted: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::BudgetExhausted {
                spent_secs,
                total_secs,
                ..
            } => Some((*spent_secs, *total_secs)),
            _ => None,
        })
        .collect();
    assert!(
        exhausted.len() <= 1,
        "BudgetExhausted fired {} times",
        exhausted.len()
    );
    if let Some((spent, total)) = exhausted.first() {
        assert!(spent >= total);
    }
}

/// The in-memory stream and the JSONL file sink render the same bytes.
#[test]
fn jsonl_sink_matches_memory_recorder() {
    let workload = workload_by_name("serial").expect("built-in workload");
    let executor = SimExecutor::new(workload);
    let opts = TunerOptions {
        budget: SimDuration::from_secs(30),
        seed: 9,
        workers: 4,
        ..TunerOptions::default()
    };
    let dir = std::env::temp_dir().join(format!("jtune-telemetry-{}", std::process::id()));
    let path = dir.join("trace.jsonl");
    let recorder = Arc::new(MemoryRecorder::new());
    let sink = Arc::new(JsonlSink::create(&path).expect("create trace file"));
    let bus = TelemetryBus::new()
        .with(recorder.clone())
        .with(sink.clone());
    let _ = Tuner::new(opts).run(&executor, "serial", &bus);
    assert_eq!(sink.write_errors(), 0);
    let from_file = std::fs::read_to_string(&path).expect("read trace back");
    assert_eq!(from_file, recorder.to_jsonl());
    let _ = std::fs::remove_dir_all(&dir);
}
