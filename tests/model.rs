//! Model-guided screening contract tests: with `--model` off the trial
//! stream is byte-identical to the legacy pipeline (no model events, no
//! extra RNG draws); with it on the stream is bit-deterministic at any
//! worker count and survives kill + resume with the same screening
//! decisions.

use std::sync::Arc;

use hotspot_autotuner::prelude::*;
use hotspot_autotuner::tuner::TuningResult;

fn base_opts(seed: u64, workers: usize) -> TunerOptions {
    TunerOptions {
        budget: SimDuration::from_mins(8),
        seed,
        workers,
        batch: 4,
        ..TunerOptions::default()
    }
}

/// Run one observed session and return (JSONL stream, result).
fn traced(opts: TunerOptions) -> (String, TuningResult) {
    let workload = workload_by_name("compress").expect("built-in workload");
    let executor = SimExecutor::new(workload);
    let recorder = Arc::new(MemoryRecorder::new());
    let bus = TelemetryBus::new().with(recorder.clone());
    let result = Tuner::new(opts).run(&executor, "compress", &bus);
    (recorder.to_jsonl(), result)
}

#[test]
fn model_off_leaves_the_legacy_stream_untouched() {
    // The screen is opt-in: a default-options session must not consume
    // any model RNG, emit any model events, or change its signature.
    let opts = base_opts(42, 4);
    assert!(opts.model.is_none());
    assert!(!opts.signature().contains("model="));
    let (trace, result) = traced(opts.clone());
    assert!(!trace.contains("\"ModelFit\""));
    assert!(!trace.contains("\"CandidateScreened\""));
    assert_eq!(result.session.screened, 0);
    assert_eq!(result.session.model_fits, 0);

    // Byte-stable across reruns, like every legacy session.
    let (again, _) = traced(opts);
    assert_eq!(trace, again);
}

#[test]
fn model_on_changes_the_stream_and_stays_deterministic_across_workers() {
    let mut narrow = base_opts(42, 1);
    narrow.model = Some(ModelPolicy::default());
    let (trace_1, result_1) = traced(narrow.clone());
    assert!(trace_1.contains("\"ModelFit\""));
    assert!(
        result_1.session.screened > 0,
        "screen never rejected a proposal"
    );

    let mut wide = narrow.clone();
    wide.workers = 8;
    let (trace_8, result_8) = traced(wide);
    assert_eq!(
        trace_1, trace_8,
        "screening decisions must not depend on thread interleaving"
    );
    assert_eq!(result_1.session.to_tsv(), result_8.session.to_tsv());

    // And the model genuinely alters the search: the screened stream
    // differs from the plain one with the same seed.
    let (plain, _) = traced(base_opts(42, 1));
    assert_ne!(trace_1, plain);
}

#[test]
fn killed_model_session_resumes_to_identical_screening_decisions() {
    let path =
        std::env::temp_dir().join(format!("jtune-model-resume-{}.jsonl", std::process::id()));
    let mut opts = base_opts(7, 4);
    opts.model = Some(ModelPolicy {
        warmup: 6,
        ..ModelPolicy::default()
    });
    opts.checkpoint = Some(path.clone());
    let (original_trace, original) = traced(opts.clone());
    assert!(original.session.screened > 0, "screen never fired");
    let full = std::fs::read_to_string(&path).unwrap();

    // Kill mid-run: truncate the journal to the header plus a prefix of
    // trials, as a `kill -9` between checkpoint flushes would.
    let prefix: Vec<&str> = full.lines().take(10).collect();
    std::fs::write(&path, prefix.join("\n") + "\n").unwrap();

    opts.resume = Some(path.clone());
    let (resumed_trace, resumed) = traced(opts);
    assert_eq!(resumed.session, original.session);
    assert_eq!(resumed.session.screened, original.session.screened);
    // The replayed prefix refits the surrogate to the same state, so
    // even the per-candidate screening events match byte-for-byte.
    let screened_lines = |trace: &str| -> Vec<String> {
        trace
            .lines()
            .filter(|l| l.contains("\"CandidateScreened\"") || l.contains("\"ModelFit\""))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(
        screened_lines(&resumed_trace),
        screened_lines(&original_trace)
    );
    // The rebuilt journal is byte-identical to the uninterrupted one.
    assert_eq!(std::fs::read_to_string(&path).unwrap(), full);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn portfolio_stream_is_deterministic_and_registered() {
    let names = hotspot_autotuner::tuner::TechniqueSet::names();
    assert!(names.contains(&"portfolio"));

    let mut opts = base_opts(11, 2);
    opts.technique = "portfolio".to_string();
    let (a, result_a) = traced(opts.clone());
    opts.workers = 8;
    let (b, result_b) = traced(opts);
    assert_eq!(a, b);
    assert!(result_a.session.best_secs <= result_a.session.default_secs);
    assert_eq!(result_a.session.to_tsv(), result_b.session.to_tsv());
}
