//! The multi-objective extension: tuning for pauses vs. throughput must
//! produce *different* configurations with the expected trade-offs.

use hotspot_autotuner::harness::Objective;
use hotspot_autotuner::prelude::*;

fn gc_bound_workload() -> Workload {
    let mut w = Workload::baseline("objective-test");
    w.total_work = 3e9;
    w.threads = 8;
    w.alloc_rate = 2.0;
    w.live_set = 450e6;
    w.nursery_survival = 0.10;
    w
}

fn tune_with(objective: Objective, seed: u64) -> TuningResult {
    let mut opts = TunerOptions {
        budget: SimDuration::from_mins(15),
        seed,
        ..TunerOptions::default()
    };
    opts.protocol.objective = objective;
    let executor = SimExecutor::new(gc_bound_workload());
    Tuner::new(opts).run(&executor, "objective-test", &TelemetryBus::disabled())
}

fn profile(config: &JvmConfig) -> (f64, f64) {
    let executor = SimExecutor::new(gc_bound_workload());
    let outcome = executor.run_full(config, 99);
    (
        outcome.total.as_secs_f64(),
        outcome.gc.pauses.percentile(99.0).as_millis_f64(),
    )
}

#[test]
fn pause_objective_trades_throughput_for_tail_latency() {
    let throughput = tune_with(Objective::Throughput, 11);
    let pause = tune_with(Objective::PausePercentile(99.0), 11);

    let (t_time, t_pause) = profile(&throughput.best_config);
    let (p_time, p_pause) = profile(&pause.best_config);

    // The pause-tuned config must have materially shorter tail pauses.
    assert!(
        p_pause < t_pause * 0.8,
        "pause-tuned p99 {p_pause:.1}ms not better than throughput-tuned {t_pause:.1}ms"
    );
    // And the throughput-tuned config must be the faster run.
    assert!(
        t_time <= p_time,
        "throughput-tuned {t_time:.2}s slower than pause-tuned {p_time:.2}s"
    );
}

#[test]
fn weighted_objective_lands_between_the_extremes() {
    let throughput = tune_with(Objective::Throughput, 13);
    let weighted = tune_with(
        Objective::Weighted {
            percentile: 99.0,
            weight: 0.5,
        },
        13,
    );

    let (t_time, t_pause) = profile(&throughput.best_config);
    let (w_time, w_pause) = profile(&weighted.best_config);

    // The weighted config may give up some run time but must cut pauses.
    assert!(
        w_pause <= t_pause,
        "weighted p99 {w_pause:.1} vs {t_pause:.1}"
    );
    assert!(
        w_time < t_time * 2.0,
        "weighted config gave up too much throughput: {w_time:.2}s vs {t_time:.2}s"
    );
}

#[test]
fn objective_is_recorded_and_deterministic() {
    let a = tune_with(Objective::PausePercentile(99.0), 17);
    let b = tune_with(Objective::PausePercentile(99.0), 17);
    assert_eq!(a.session.to_tsv(), b.session.to_tsv());
    // Session scores carry the objective's unit — milliseconds of p99
    // pause here, not run-time seconds. The best found must improve on the
    // default's pause profile, and both sit at millisecond scale (this
    // workload's default p99 is ~25 ms while its run time is >1 s, so a
    // unit mix-up would show up as a 50× discrepancy).
    assert!(a.session.best_secs <= a.session.default_secs);
    assert!(
        a.session.default_secs < 1000.0 && a.session.best_secs < 100.0,
        "scores not millisecond-pause scale: default {} best {}",
        a.session.default_secs,
        a.session.best_secs
    );
}
