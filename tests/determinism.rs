//! Determinism guarantees across the stack: every experiment table in the
//! reproduction must be regenerable bit-for-bit.

use hotspot_autotuner::harness::SessionRecord;
use hotspot_autotuner::prelude::*;

fn opts(seed: u64, workers: usize) -> TunerOptions {
    TunerOptions {
        budget: SimDuration::from_mins(4),
        seed,
        workers,
        ..TunerOptions::default()
    }
}

#[test]
fn identical_seeds_give_identical_sessions() {
    let w = workload_by_name("crypto.rsa").unwrap();
    let a = Tuner::new(opts(42, 4)).run(
        &SimExecutor::new(w.clone()),
        "rsa",
        &TelemetryBus::disabled(),
    );
    let b = Tuner::new(opts(42, 4)).run(&SimExecutor::new(w), "rsa", &TelemetryBus::disabled());
    // The entire trial log must match, not just the headline.
    assert_eq!(a.session.to_tsv(), b.session.to_tsv());
}

#[test]
fn worker_count_does_not_change_results() {
    let w = workload_by_name("crypto.aes").unwrap();
    let serial = Tuner::new(opts(7, 1)).run(
        &SimExecutor::new(w.clone()),
        "aes",
        &TelemetryBus::disabled(),
    );
    let parallel =
        Tuner::new(opts(7, 8)).run(&SimExecutor::new(w), "aes", &TelemetryBus::disabled());
    assert_eq!(serial.session.to_tsv(), parallel.session.to_tsv());
}

#[test]
fn different_seeds_explore_differently() {
    let w = workload_by_name("crypto.rsa").unwrap();
    let a = Tuner::new(opts(1, 4)).run(
        &SimExecutor::new(w.clone()),
        "rsa",
        &TelemetryBus::disabled(),
    );
    let b = Tuner::new(opts(2, 4)).run(&SimExecutor::new(w), "rsa", &TelemetryBus::disabled());
    assert_ne!(a.session.to_tsv(), b.session.to_tsv());
}

#[test]
fn session_records_round_trip_through_tsv() {
    let w = workload_by_name("scimark.fft").unwrap();
    let result = Tuner::new(opts(9, 4)).run(&SimExecutor::new(w), "fft", &TelemetryBus::disabled());
    let tsv = result.session.to_tsv();
    let back = SessionRecord::from_tsv(&tsv).expect("parse back");
    assert_eq!(back, result.session);
}

#[test]
fn simulator_outcomes_are_pure_functions_of_config_and_seed() {
    let registry = hotspot_registry();
    let workload = workload_by_name("dacapo:fop").unwrap();
    let sim = JvmSim::new();
    let mut config = JvmConfig::default_for(registry);
    config
        .set_by_name(registry, "TieredCompilation", FlagValue::Bool(true))
        .unwrap();
    let a = sim.run(registry, &config, &workload, 77);
    let b = sim.run(registry, &config, &workload, 77);
    assert_eq!(a.total, b.total);
    assert_eq!(a.gc.young_collections, b.gc.young_collections);
    assert_eq!(a.jit.c2_compiles, b.jit.c2_compiles);
}
