//! Property-style tests over the core data structures and invariants:
//! flag domains, configuration round-trips, hierarchy canonicalisation,
//! and simulator sanity on arbitrary workloads.
//!
//! Cases are generated from a seeded [`Xoshiro256pp`] (the container
//! builds offline, so no external property-testing framework): each
//! property runs 64 derived cases and reports the failing seed on panic.

use hotspot_autotuner::flagtree;
use hotspot_autotuner::prelude::*;
use hotspot_autotuner::tuner::{ConfigManipulator, HierarchicalManipulator};
use hotspot_autotuner::util::{Rng, Xoshiro256pp};
use hotspot_autotuner::workloads::SyntheticGenerator;

/// Number of generated cases per property.
const CASES: u64 = 64;

/// Run `check` over `CASES` seeds derived from a per-property base seed.
fn for_each_case(base: u64, mut check: impl FnMut(u64, &mut Xoshiro256pp)) {
    for case in 0..CASES {
        let seed = base
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(case.wrapping_mul(0xD1B5_4A32_D192_ED03));
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x5eed);
        check(seed, &mut rng);
    }
}

/// A seeded random *canonical* configuration.
fn random_canonical(seed: u64) -> JvmConfig {
    let m = HierarchicalManipulator::new();
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    m.random(&mut rng)
}

#[test]
fn random_hierarchical_configs_are_valid_and_canonical() {
    let registry = hotspot_registry();
    let tree = hotspot_tree();
    for_each_case(1, |seed, _| {
        let config = random_canonical(seed);
        assert!(config.validate(registry).is_ok(), "seed {seed}");
        // Canonicalisation is a fixed point on manipulator output.
        let mut again = config.clone();
        tree.enforce(registry, &mut again);
        assert_eq!(again.fingerprint(), config.fingerprint(), "seed {seed}");
        // Exactly one collector is selected.
        let on = [
            "UseSerialGC",
            "UseParallelGC",
            "UseConcMarkSweepGC",
            "UseG1GC",
        ]
        .iter()
        .filter(|n| config.get_by_name(registry, n) == Some(FlagValue::Bool(true)))
        .count();
        assert_eq!(on, 1, "seed {seed}");
    });
}

#[test]
fn config_args_round_trip() {
    let registry = hotspot_registry();
    for_each_case(2, |seed, _| {
        let config = random_canonical(seed);
        let args = config.to_args(registry);
        let parsed = JvmConfig::parse_args(registry, &args).unwrap();
        assert_eq!(parsed.fingerprint(), config.fingerprint(), "seed {seed}");
    });
}

#[test]
fn mutation_preserves_validity() {
    let registry = hotspot_registry();
    let m = HierarchicalManipulator::new();
    for_each_case(3, |seed, rng| {
        let strength = 0.05 + rng.next_f64() * 0.95;
        let mut config = JvmConfig::default_for(registry);
        for _ in 0..10 {
            config = m.mutate(&config, rng, strength);
            assert!(config.validate(registry).is_ok(), "seed {seed}");
        }
    });
}

#[test]
fn enforce_is_idempotent_on_arbitrary_corruption() {
    // Scribble random in-domain values over random flags WITHOUT the
    // manipulator, then canonicalise twice: second pass is identity.
    let registry = hotspot_registry();
    let tree = hotspot_tree();
    for_each_case(4, |seed, rng| {
        let mut config = JvmConfig::default_for(registry);
        for _ in 0..40 {
            let ids = registry.tunable_ids();
            let id = ids[rng.next_below(ids.len() as u64) as usize];
            let v = autotuner_core::manipulator::random_value(&registry.spec(id).domain, rng);
            config.set(id, v);
        }
        tree.enforce(registry, &mut config);
        let once = config.fingerprint();
        tree.enforce(registry, &mut config);
        assert_eq!(config.fingerprint(), once, "seed {seed}");
        assert!(config.validate(registry).is_ok(), "seed {seed}");
    });
}

#[test]
fn active_flags_never_include_dead_subtrees() {
    let registry = hotspot_registry();
    let tree = hotspot_tree();
    for_each_case(5, |seed, _| {
        let config = random_canonical(seed);
        let active = tree.active_flags(&config);
        let has = |name: &str| active.iter().any(|id| registry.spec(*id).name == name);
        let g1_on = config.get_by_name(registry, "UseG1GC") == Some(FlagValue::Bool(true));
        let cms_on =
            config.get_by_name(registry, "UseConcMarkSweepGC") == Some(FlagValue::Bool(true));
        assert_eq!(has("G1ReservePercent"), g1_on, "seed {seed}");
        assert_eq!(has("CMSPrecleanIter"), cms_on, "seed {seed}");
    });
}

#[test]
fn simulator_completes_or_fails_cleanly_on_synthetic_workloads() {
    let registry = hotspot_registry();
    for_each_case(6, |seed, rng| {
        let wl_seed = rng.next_u64();
        let cfg_seed = rng.next_u64();
        let mut gen = SyntheticGenerator::new(wl_seed);
        let mut workload = gen.next_workload();
        // Keep property runs fast.
        workload.total_work = workload.total_work.min(1.5e9);
        let config = random_canonical(cfg_seed);
        let outcome = JvmSim::new().run(registry, &config, &workload, 3);
        if outcome.ok() {
            assert!(outcome.total > SimDuration::ZERO, "seed {seed}");
            assert!(outcome.breakdown.mutator > SimDuration::ZERO, "seed {seed}");
            // Breakdown must account for the reported total within noise.
            let raw = outcome.breakdown.total().as_secs_f64();
            let noisy = outcome.total.as_secs_f64();
            assert!(
                (noisy / raw - 1.0).abs() < 0.2,
                "seed {seed}: raw {raw} noisy {noisy}"
            );
        } else {
            // Failures must be one of the modelled kinds.
            let msg = outcome.failure.as_ref().unwrap().to_string();
            assert!(
                msg.contains("OutOfMemory") || msg.contains("invalid configuration"),
                "seed {seed}: unexpected failure {msg}"
            );
        }
    });
}

#[test]
fn bigger_heaps_never_cause_oom_when_default_survives() {
    // If the default heap completes a workload, growing the heap must
    // not introduce OOM.
    let registry = hotspot_registry();
    let sim = JvmSim::new();
    for seed in 0u64..CASES {
        let mut gen = SyntheticGenerator::new(seed);
        let mut workload = gen.next_workload();
        workload.total_work = workload.total_work.min(1e9);
        let default_cfg = JvmConfig::default_for(registry);
        let default_run = sim.run(registry, &default_cfg, &workload, 1);
        if !default_run.ok() {
            continue; // property only constrains surviving defaults
        }
        let mut big = default_cfg.clone();
        big.set_by_name(registry, "MaxHeapSize", FlagValue::Int(4 << 30))
            .unwrap();
        let big_run = sim.run(registry, &big, &workload, 1);
        assert!(
            big_run.ok(),
            "seed {seed}: bigger heap OOMed: {:?}",
            big_run.failure
        );
    }
}

#[test]
fn space_stats_strata_below_flat() {
    let stats = flagtree::SpaceStats::compute(hotspot_tree(), hotspot_registry());
    for s in &stats.strata {
        assert!(s.log10_size < stats.flat_log10);
    }
    assert!(stats.hierarchical_log10 < stats.flat_log10);
}
