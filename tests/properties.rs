//! Property-based tests (proptest) over the core data structures and
//! invariants: flag domains, configuration round-trips, hierarchy
//! canonicalisation, and simulator sanity on arbitrary workloads.

use hotspot_autotuner::prelude::*;
use hotspot_autotuner::flagtree;
use hotspot_autotuner::tuner::{ConfigManipulator, HierarchicalManipulator};
use hotspot_autotuner::util::{Rng, Xoshiro256pp};
use hotspot_autotuner::workloads::SyntheticGenerator;
use proptest::prelude::*;

/// A seeded random *canonical* configuration.
fn random_canonical(seed: u64) -> JvmConfig {
    let m = HierarchicalManipulator::new();
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    m.random(&mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_hierarchical_configs_are_valid_and_canonical(seed in any::<u64>()) {
        let registry = hotspot_registry();
        let tree = hotspot_tree();
        let config = random_canonical(seed);
        prop_assert!(config.validate(registry).is_ok());
        // Canonicalisation is a fixed point on manipulator output.
        let mut again = config.clone();
        tree.enforce(registry, &mut again);
        prop_assert_eq!(again.fingerprint(), config.fingerprint());
        // Exactly one collector is selected.
        let on = ["UseSerialGC", "UseParallelGC", "UseConcMarkSweepGC", "UseG1GC"]
            .iter()
            .filter(|n| config.get_by_name(registry, n) == Some(FlagValue::Bool(true)))
            .count();
        prop_assert_eq!(on, 1);
    }

    #[test]
    fn config_args_round_trip(seed in any::<u64>()) {
        let registry = hotspot_registry();
        let config = random_canonical(seed);
        let args = config.to_args(registry);
        let parsed = JvmConfig::parse_args(registry, &args).unwrap();
        prop_assert_eq!(parsed.fingerprint(), config.fingerprint());
    }

    #[test]
    fn mutation_preserves_validity(seed in any::<u64>(), strength in 0.05f64..1.0) {
        let registry = hotspot_registry();
        let m = HierarchicalManipulator::new();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut config = JvmConfig::default_for(registry);
        for _ in 0..10 {
            config = m.mutate(&config, &mut rng, strength);
            prop_assert!(config.validate(registry).is_ok());
        }
    }

    #[test]
    fn enforce_is_idempotent_on_arbitrary_corruption(seed in any::<u64>()) {
        // Scribble random in-domain values over random flags WITHOUT the
        // manipulator, then canonicalise twice: second pass is identity.
        let registry = hotspot_registry();
        let tree = hotspot_tree();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut config = JvmConfig::default_for(registry);
        for _ in 0..40 {
            let ids = registry.tunable_ids();
            let id = ids[rng.next_below(ids.len() as u64) as usize];
            let v = autotuner_core::manipulator::random_value(
                &registry.spec(id).domain,
                &mut rng,
            );
            config.set(id, v);
        }
        tree.enforce(registry, &mut config);
        let once = config.fingerprint();
        tree.enforce(registry, &mut config);
        prop_assert_eq!(config.fingerprint(), once);
        prop_assert!(config.validate(registry).is_ok());
    }

    #[test]
    fn active_flags_never_include_dead_subtrees(seed in any::<u64>()) {
        let registry = hotspot_registry();
        let tree = hotspot_tree();
        let config = random_canonical(seed);
        let active = tree.active_flags(&config);
        let has = |name: &str| {
            active.iter().any(|id| registry.spec(*id).name == name)
        };
        let g1_on = config.get_by_name(registry, "UseG1GC") == Some(FlagValue::Bool(true));
        let cms_on =
            config.get_by_name(registry, "UseConcMarkSweepGC") == Some(FlagValue::Bool(true));
        prop_assert_eq!(has("G1ReservePercent"), g1_on);
        prop_assert_eq!(has("CMSPrecleanIter"), cms_on);
    }

    #[test]
    fn simulator_completes_or_fails_cleanly_on_synthetic_workloads(
        wl_seed in any::<u64>(), cfg_seed in any::<u64>()
    ) {
        let registry = hotspot_registry();
        let mut gen = SyntheticGenerator::new(wl_seed);
        let mut workload = gen.next_workload();
        // Keep property runs fast.
        workload.total_work = workload.total_work.min(1.5e9);
        let config = random_canonical(cfg_seed);
        let outcome = JvmSim::new().run(registry, &config, &workload, 3);
        if outcome.ok() {
            prop_assert!(outcome.total > SimDuration::ZERO);
            prop_assert!(outcome.breakdown.mutator > SimDuration::ZERO);
            // Breakdown must account for the reported total within noise.
            let raw = outcome.breakdown.total().as_secs_f64();
            let noisy = outcome.total.as_secs_f64();
            prop_assert!((noisy / raw - 1.0).abs() < 0.2, "raw {} noisy {}", raw, noisy);
        } else {
            // Failures must be one of the modelled kinds.
            let msg = outcome.failure.as_ref().unwrap().to_string();
            prop_assert!(
                msg.contains("OutOfMemory") || msg.contains("invalid configuration"),
                "unexpected failure {}", msg
            );
        }
    }

    #[test]
    fn bigger_heaps_never_cause_oom_when_default_survives(seed in 0u64..500) {
        // If the default heap completes a workload, growing the heap must
        // not introduce OOM.
        let registry = hotspot_registry();
        let mut gen = SyntheticGenerator::new(seed);
        let mut workload = gen.next_workload();
        workload.total_work = workload.total_work.min(1e9);
        let sim = JvmSim::new();
        let default_cfg = JvmConfig::default_for(registry);
        let default_run = sim.run(registry, &default_cfg, &workload, 1);
        prop_assume!(default_run.ok());
        let mut big = default_cfg.clone();
        big.set_by_name(registry, "MaxHeapSize", FlagValue::Int(4 << 30)).unwrap();
        let big_run = sim.run(registry, &big, &workload, 1);
        prop_assert!(big_run.ok(), "bigger heap OOMed: {:?}", big_run.failure);
    }

    #[test]
    fn space_stats_strata_below_flat(_x in 0u8..1) {
        let stats = flagtree::SpaceStats::compute(hotspot_tree(), hotspot_registry());
        for s in &stats.strata {
            prop_assert!(s.log10_size < stats.flat_log10);
        }
        prop_assert!(stats.hierarchical_log10 < stats.flat_log10);
    }
}
