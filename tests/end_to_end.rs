//! Integration tests across the whole stack: flags → hierarchy →
//! simulator → harness → tuner, exactly as a downstream user would drive
//! it through the facade crate.

use hotspot_autotuner::prelude::*;

fn small_budget() -> TunerOptions {
    TunerOptions {
        budget: SimDuration::from_mins(8),
        seed: 1234,
        ..TunerOptions::default()
    }
}

#[test]
fn tunes_a_spec_program_end_to_end() {
    let workload = workload_by_name("serial").expect("built-in");
    let executor = SimExecutor::new(workload);
    let result = Tuner::new(small_budget()).run(&executor, "serial", &TelemetryBus::disabled());

    assert!(result.session.best_secs <= result.session.default_secs);
    assert!(result.session.evaluations > 10);
    // serial is the suite's headroom champion; even a small budget finds
    // double-digit improvement.
    assert!(
        result.improvement_percent() > 10.0,
        "only {:.1}%",
        result.improvement_percent()
    );
    // The best delta must be real, parseable -XX: arguments.
    let registry = hotspot_registry();
    let parsed = JvmConfig::parse_args(registry, &result.session.best_delta)
        .expect("best delta round-trips");
    assert_eq!(parsed.fingerprint(), result.best_config.fingerprint());
}

#[test]
fn best_config_reproduces_its_score_in_the_simulator() {
    let workload = workload_by_name("xml.validation").expect("built-in");
    let executor = SimExecutor::new(workload);
    let result =
        Tuner::new(small_budget()).run(&executor, "xml.validation", &TelemetryBus::disabled());

    // Re-measure the winner: the median of fresh runs must sit near the
    // recorded best score (within noise).
    let times: Vec<f64> = (0..7)
        .map(|i| {
            executor
                .measure(&result.best_config, 9000 + i)
                .time
                .as_secs_f64()
        })
        .collect();
    let median = hotspot_autotuner::util::stats::median(&times);
    let rel = (median - result.session.best_secs).abs() / result.session.best_secs;
    assert!(
        rel < 0.10,
        "best score not reproducible: {rel:.3} relative error"
    );
}

#[test]
fn whole_jvm_tuning_beats_gc_subset_on_jit_bound_workload() {
    // compiler.compiler's headroom is mostly JIT warm-up: a GC-only tuner
    // (prior work) cannot reach it. This is the paper's core claim.
    let workload = workload_by_name("compiler.compiler").expect("built-in");
    let mut hier_opts = small_budget();
    hier_opts.budget = SimDuration::from_mins(20);
    let mut subset_opts = hier_opts.clone();
    subset_opts.manipulator = ManipulatorKind::GcSubset;

    let hier = Tuner::new(hier_opts).run(
        &SimExecutor::new(workload.clone()),
        "cc",
        &TelemetryBus::disabled(),
    );
    let subset =
        Tuner::new(subset_opts).run(&SimExecutor::new(workload), "cc", &TelemetryBus::disabled());

    assert!(
        hier.improvement_percent() > subset.improvement_percent() + 5.0,
        "hierarchical {:.1}% vs subset {:.1}%",
        hier.improvement_percent(),
        subset.improvement_percent()
    );
}

#[test]
fn tuned_flags_run_on_a_real_jvm_if_present() {
    // The bridge to reality: whatever the tuner recommends must be a legal
    // HotSpot command line. If a JDK is installed, actually launch it.
    let workload = workload_by_name("compress").expect("built-in");
    let mut opts = small_budget();
    opts.max_evaluations = Some(30);
    let result = Tuner::new(opts).run(
        &SimExecutor::new(workload),
        "compress",
        &TelemetryBus::disabled(),
    );

    let Some(process) = ProcessExecutor::from_path(vec!["-version".into()]) else {
        eprintln!("skipping real-JVM leg: no java on PATH");
        return;
    };
    let m = process.measure(&JvmConfig::default_for(hotspot_registry()), 0);
    assert!(m.ok(), "plain `java -version` failed: {:?}", m.error);
    // Tuned flags may be rejected by a modern JVM (JDK-7 registry); that
    // must surface as a clean measurement error, not a crash of our code.
    let tuned = process.measure(&result.best_config, 0);
    if let Some(err) = &tuned.error {
        eprintln!("modern JVM rejected JDK-7 flags (expected): {err}");
    }
}

#[test]
fn suite_membership_matches_paper_counts() {
    assert_eq!(specjvm2008_startup().len(), 16);
    assert_eq!(dacapo().len(), 13);
}

#[test]
fn degenerate_budget_still_returns_default_baseline() {
    let workload = workload_by_name("compress").expect("built-in");
    let executor = SimExecutor::new(workload);
    let opts = TunerOptions {
        budget: SimDuration::from_secs(1), // less than one evaluation
        seed: 5,
        ..TunerOptions::default()
    };
    let result = Tuner::new(opts).run(&executor, "compress", &TelemetryBus::disabled());
    assert!(result.session.default_secs.is_finite());
    assert!(result.session.best_secs <= result.session.default_secs);
}
