//! Integration tests for the adaptive evaluation pipeline: trial
//! memoization charges the budget correctly, within-batch duplicates run
//! once, sequential racing never aborts a candidate that would have won,
//! and the new trace events stay bit-deterministic across worker counts.

use std::sync::Arc;

use hotspot_autotuner::harness::{Evaluation, Provenance};
use hotspot_autotuner::prelude::*;
use hotspot_autotuner::tuner::manipulator::{ConfigManipulator, HierarchicalManipulator};
use hotspot_autotuner::util::Xoshiro256pp;

fn executor(name: &str) -> SimExecutor {
    SimExecutor::new(workload_by_name(name).expect("built-in workload"))
}

fn random_config(manipulator: &HierarchicalManipulator, seed: u64) -> JvmConfig {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    manipulator.random(&mut rng)
}

#[test]
fn cache_hits_are_free_and_recharge_is_proportional() {
    let ex = executor("compress");
    let m = HierarchicalManipulator::new();
    let cand = random_config(&m, 1);
    let bus = TelemetryBus::disabled();

    // Free-hit policy: the second sight of a configuration costs nothing.
    let mut pipeline = EvalPipeline::new(Protocol::default(), Some(CachePolicy { recharge: 0.0 }));
    let first = pipeline.evaluate_batch(&ex, std::slice::from_ref(&cand), 10, 1, None, &bus);
    let original_cost = first.evals[0].cost;
    assert!(original_cost.as_secs_f64() > 0.0);
    let again = pipeline.evaluate_batch(&ex, std::slice::from_ref(&cand), 20, 1, None, &bus);
    assert!(matches!(again.provenance[0], Provenance::CacheHit { .. }));
    assert_eq!(again.evals[0].cost.as_secs_f64(), 0.0);
    assert_eq!(again.evals[0].score, first.evals[0].score);
    let stats = pipeline.stats();
    assert_eq!((stats.fresh, stats.cache_hits), (1, 1));
    assert!((stats.saved.as_secs_f64() - original_cost.as_secs_f64()).abs() < 1e-9);

    // Re-charge policy: a hit costs the configured fraction of the
    // original, and only the remainder counts as saved.
    let mut half = EvalPipeline::new(Protocol::default(), Some(CachePolicy { recharge: 0.5 }));
    let first = half.evaluate_batch(&ex, std::slice::from_ref(&cand), 10, 1, None, &bus);
    let original = first.evals[0].cost.as_secs_f64();
    let hit = half.evaluate_batch(&ex, std::slice::from_ref(&cand), 20, 1, None, &bus);
    assert!((hit.evals[0].cost.as_secs_f64() - original * 0.5).abs() < 1e-6);
    assert!((half.stats().saved.as_secs_f64() - original * 0.5).abs() < 1e-6);
}

#[test]
fn within_batch_duplicates_run_once() {
    let ex = executor("serial");
    let m = HierarchicalManipulator::new();
    let a = random_config(&m, 2);
    let b = random_config(&m, 3);
    assert_ne!(a.fingerprint(), b.fingerprint());
    let batch = [a.clone(), a.clone(), b, a];

    let mut pipeline = EvalPipeline::new(Protocol::default(), Some(CachePolicy::default()));
    let report = pipeline.evaluate_batch(&ex, &batch, 77, 4, None, &TelemetryBus::disabled());

    assert_eq!(report.evals.len(), 4);
    assert!(matches!(report.provenance[0], Provenance::Fresh));
    assert!(matches!(
        report.provenance[1],
        Provenance::Duplicate { of: 0 }
    ));
    assert!(matches!(report.provenance[2], Provenance::Fresh));
    assert!(matches!(
        report.provenance[3],
        Provenance::Duplicate { of: 0 }
    ));
    for i in [1usize, 3] {
        assert_eq!(report.evals[i].score, report.evals[0].score);
        assert_eq!(report.evals[i].cost.as_secs_f64(), 0.0);
    }
    let stats = pipeline.stats();
    assert_eq!((stats.fresh, stats.suppressed), (2, 2));
}

/// The racing safety property: whenever the protocol aborts a candidate
/// against a baseline, measuring that candidate in full (same seeds, no
/// racing) must yield a score no better than the baseline's — racing may
/// only cut losers. Exercised over many seeds and random configurations.
#[test]
fn racing_never_aborts_a_winner() {
    let ex = executor("compress");
    let m = HierarchicalManipulator::new();
    let plain = Protocol::default();
    let racing = Protocol {
        racing: Some(Racing::default()),
        ..Protocol::default()
    };

    let baseline: Evaluation = plain.evaluate(&ex, &JvmConfig::default_for(ex.registry()), 0xBA5E);
    let baseline_secs: Vec<f64> = baseline.samples.iter().map(|s| s.as_secs_f64()).collect();
    let baseline_score = baseline.score.expect("default config runs");

    let mut aborts = 0;
    for seed in 0..120u64 {
        let cand = random_config(&m, 1000 + seed);
        let raced = racing.evaluate_raced(&ex, &cand, seed, Some(&baseline_secs));
        if !raced.aborted() {
            continue;
        }
        aborts += 1;
        assert!(raced.score.is_none(), "aborted candidates are censored");
        assert!(raced.runs < plain.repeats, "abort must save repeats");
        let full = plain.evaluate(&ex, &cand, seed);
        if let Some(full_score) = full.score {
            assert!(
                full_score >= baseline_score,
                "seed {seed}: aborted candidate would have won \
                 ({full_score:.4}s vs baseline {baseline_score:.4}s)"
            );
        }
    }
    assert!(aborts > 5, "property loop exercised only {aborts} aborts");
}

/// With cache and racing both on, the full event stream (including the
/// new CacheHit / DuplicateSuppressed / TrialAborted events) is
/// byte-identical whether evaluation runs on one worker or eight.
#[test]
fn pipeline_events_are_byte_identical_across_worker_counts() {
    let session = |workers: usize| {
        let ex = executor("compress");
        let opts = TunerOptions::builder()
            .budget(SimDuration::from_mins(3))
            .seed(42)
            .workers(workers)
            .batch(8)
            .cache(CachePolicy::default())
            .racing(Racing::default())
            .build()
            .expect("valid options");
        let recorder = Arc::new(MemoryRecorder::new());
        let bus = TelemetryBus::new().with(recorder.clone());
        let result = Tuner::new(opts).run(&ex, "compress", &bus);
        (recorder.to_jsonl(), result)
    };
    let (serial, serial_result) = session(1);
    let (parallel, parallel_result) = session(8);
    assert_eq!(
        serial_result.session.to_tsv(),
        parallel_result.session.to_tsv()
    );
    assert_eq!(
        serial, parallel,
        "pipeline telemetry must not depend on thread interleaving"
    );
    // The racing feature must actually have fired in this session, or the
    // determinism claim is vacuous.
    assert!(serial.contains("\"TrialAborted\""), "no aborts in stream");
    assert!(serial_result.session.aborted > 0);
}

/// Budget accounting at the session level: with the cache on, the charges
/// reported per trial still sum exactly to the session's spent budget
/// (cache hits charge their re-charge, duplicates charge zero).
#[test]
fn session_budget_accounting_holds_with_pipeline_features_on() {
    let ex = executor("serial");
    let opts = TunerOptions::builder()
        .budget(SimDuration::from_mins(2))
        .seed(9)
        .workers(4)
        .cache(CachePolicy { recharge: 0.25 })
        .racing(Racing::default())
        .build()
        .expect("valid options");
    let recorder = Arc::new(MemoryRecorder::new());
    let bus = TelemetryBus::new().with(recorder.clone());
    let _ = Tuner::new(opts).run(&ex, "serial", &bus);
    let mut total = 0.0;
    let mut finished = None;
    for e in recorder.events() {
        match e {
            TraceEvent::TrialEvaluated {
                cost_secs,
                budget_spent_secs,
                ..
            } => {
                total += cost_secs;
                assert!(
                    (total - budget_spent_secs).abs() < 1e-6,
                    "running charge mismatch: {total} vs {budget_spent_secs}"
                );
            }
            TraceEvent::SessionFinished { spent_secs, .. } => finished = Some(spent_secs),
            _ => {}
        }
    }
    let finished = finished.expect("SessionFinished event");
    assert!((finished - total).abs() < 1e-6);
}
