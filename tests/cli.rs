//! CLI argument validation: unknown flags and malformed values must
//! exit non-zero with usage instead of warning and tuning anyway.

use std::path::PathBuf;
use std::process::{Command, Output};

fn jtune(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_jtune"))
        .args(args)
        .output()
        .expect("run jtune")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jtune-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn unknown_top_level_flag_exits_nonzero_with_usage() {
    let out = jtune(&["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("USAGE"), "{}", stderr_of(&out));
}

#[test]
fn unknown_tune_flag_exits_nonzero_with_usage() {
    let out = jtune(&["tune", "compress", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr_of(&out);
    assert!(err.contains("unknown flag"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn malformed_values_exit_nonzero() {
    for args in [
        ["tune", "compress", "--budget", "nope"],
        ["tune", "compress", "--seed", "3.5"],
        ["tune", "compress", "--workers", "many"],
        ["tune", "compress", "--deadline", "-1"],
        ["suite", "spec", "--budget", "nope"],
    ] {
        let out = jtune(&args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        assert!(
            stderr_of(&out).contains("invalid options") || stderr_of(&out).contains("is not"),
            "args: {args:?}, stderr: {}",
            stderr_of(&out)
        );
    }
}

#[test]
fn flag_missing_its_value_exits_nonzero() {
    let out = jtune(&["tune", "compress", "--budget"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("requires a value"),
        "{}",
        stderr_of(&out)
    );
}

#[test]
fn conflicting_resume_signature_exits_nonzero() {
    let dir = temp_dir("resume-conflict");
    let journal = dir.join("journal.jsonl");
    let journal = journal.to_str().expect("utf8 path");

    let first = jtune(&[
        "tune",
        "compress",
        "--budget",
        "1",
        "--seed",
        "5",
        "--checkpoint",
        journal,
        "--json",
    ]);
    assert_eq!(first.status.code(), Some(0), "{}", stderr_of(&first));

    // Same journal, different budget: the session signature conflicts
    // and the tuner must refuse rather than silently diverge.
    let second = jtune(&[
        "tune", "compress", "--budget", "2", "--seed", "5", "--resume", journal,
    ]);
    assert_eq!(second.status.code(), Some(1), "{}", stderr_of(&second));
    assert!(
        stderr_of(&second).contains("refusing to resume"),
        "{}",
        stderr_of(&second)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_from_a_missing_journal_exits_nonzero() {
    let out = jtune(&[
        "tune",
        "compress",
        "--budget",
        "1",
        "--resume",
        "/nonexistent/journal.jsonl",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr_of(&out).contains("cannot resume"),
        "{}",
        stderr_of(&out)
    );
}
