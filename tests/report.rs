//! End-to-end reporting contract tests: `jtune report` output is
//! byte-deterministic (same input → same bytes, at any worker count),
//! and turning spans on changes nothing about the serialised trace —
//! the report pipeline observes sessions without perturbing them.

use std::path::PathBuf;
use std::sync::Arc;

use hotspot_autotuner::prelude::*;
use hotspot_autotuner::report;

/// A fresh temp directory whose *leaf* name is always `traces`, so the
/// report title (derived from the input path) is identical across
/// otherwise-identical runs.
fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("jtune-report-{}-{name}", std::process::id()))
        .join("traces");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Run one traced session into `dir/<program>.jsonl`.
fn traced_session(dir: &std::path::Path, program: &str, workers: usize, seed: u64, spans: bool) {
    let workload = workload_by_name(program).expect("built-in workload");
    let executor = SimExecutor::new(workload);
    let opts = TunerOptions {
        budget: SimDuration::from_mins(2),
        seed,
        workers,
        batch: 8,
        ..TunerOptions::default()
    };
    let sink = JsonlSink::create(dir.join(format!("{program}.jsonl"))).expect("trace file");
    let bus = TelemetryBus::new().with(Arc::new(sink)).with_spans(spans);
    Tuner::new(opts).run(&executor, program, &bus);
}

#[test]
fn report_is_byte_identical_across_runs() {
    let a = temp_dir("rerun-a");
    let b = temp_dir("rerun-b");
    traced_session(&a, "compress", 4, 42, false);
    traced_session(&b, "compress", 4, 42, false);
    let ra = report::load(&a).expect("report a");
    let rb = report::load(&b).expect("report b");
    for format in [
        report::Format::Markdown,
        report::Format::Html,
        report::Format::Json,
    ] {
        assert_eq!(
            report::render(&ra, format),
            report::render(&rb, format),
            "{format:?} must be byte-identical across identical runs"
        );
    }
    let _ = std::fs::remove_dir_all(&a);
    let _ = std::fs::remove_dir_all(&b);
}

#[test]
fn report_is_worker_count_independent() {
    let serial = temp_dir("workers-1");
    let parallel = temp_dir("workers-8");
    traced_session(&serial, "compress", 1, 7, false);
    traced_session(&parallel, "compress", 8, 7, false);
    let rs = report::load(&serial).expect("serial report");
    let rp = report::load(&parallel).expect("parallel report");
    assert_eq!(
        report::to_markdown(&rs),
        report::to_markdown(&rp),
        "reports must not depend on thread interleaving"
    );
    assert_eq!(report::to_html(&rs), report::to_html(&rp));
    let _ = std::fs::remove_dir_all(&serial);
    let _ = std::fs::remove_dir_all(&parallel);
}

#[test]
fn spans_do_not_change_the_serialised_trace() {
    let off = temp_dir("spans-off");
    let on = temp_dir("spans-on");
    traced_session(&off, "compress", 4, 42, false);
    traced_session(&on, "compress", 4, 42, true);
    let trace_off = std::fs::read(off.join("compress.jsonl")).expect("spans-off trace");
    let trace_on = std::fs::read(on.join("compress.jsonl")).expect("spans-on trace");
    assert!(!trace_off.is_empty());
    assert_eq!(
        trace_off, trace_on,
        "spans are ephemeral: the JSONL trace must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&off);
    let _ = std::fs::remove_dir_all(&on);
}

#[test]
fn experiment_dir_report_covers_every_session_in_name_order() {
    let dir = temp_dir("suite");
    traced_session(&dir, "serial", 4, 1, false);
    traced_session(&dir, "compress", 4, 2, false);
    let r = report::load(&dir).expect("suite report");
    let labels: Vec<&str> = r.sessions.iter().map(|s| s.label.as_str()).collect();
    assert_eq!(labels, ["compress", "serial"], "sessions sort by name");
    let md = report::to_markdown(&r);
    for section in [
        "## Overview",
        "### Convergence",
        "### Techniques",
        "### Counters",
        "### Flag impact",
    ] {
        assert!(md.contains(section), "markdown must contain {section:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn json_report_round_trips_through_the_parser() {
    let dir = temp_dir("json");
    traced_session(&dir, "compress", 4, 3, false);
    let r = report::load(&dir).expect("report");
    let json = report::to_json(&r);
    let parsed = hotspot_autotuner::util::json::parse(&json).expect("valid JSON");
    let sessions = parsed
        .get("sessions")
        .and_then(|v| v.as_array())
        .expect("sessions array");
    assert_eq!(sessions.len(), 1);
    assert_eq!(
        sessions[0].get("program").and_then(|v| v.as_str()),
        Some("compress")
    );
    let _ = std::fs::remove_dir_all(&dir);
}
