//! Fault-tolerance integration tests: seeded fault injection is
//! bit-reproducible, transient faults cost budget rather than result
//! quality, a killed-and-resumed session emits a byte-identical trace,
//! and a deterministically-hostile executor degrades the session to the
//! incumbent instead of wedging it.

use std::sync::Arc;

use hotspot_autotuner::flags::Registry;
use hotspot_autotuner::harness::Measurement;
use hotspot_autotuner::prelude::*;
use hotspot_autotuner::tuner::manipulator::{ConfigManipulator, HierarchicalManipulator};

fn executor(name: &str) -> SimExecutor {
    SimExecutor::new(workload_by_name(name).expect("built-in workload"))
}

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("jtune-faults-{}-{name}", std::process::id()))
}

fn resilient_opts(seed: u64) -> TunerOptions {
    TunerOptions::builder()
        .budget(SimDuration::from_mins(4))
        .seed(seed)
        .workers(4)
        .batch(8)
        .retry(RetryPolicy::default())
        .quarantine(QuarantinePolicy::default())
        .build()
        .expect("valid options")
}

#[test]
fn fault_injection_is_bit_reproducible() {
    let run = || {
        let ex = FaultyExecutor::new(executor("compress"), FaultPlan::transient(0.2, 99));
        let recorder = Arc::new(MemoryRecorder::new());
        let bus = TelemetryBus::new().with(recorder.clone());
        let result = Tuner::new(resilient_opts(42)).run(&ex, "compress", &bus);
        (recorder.to_jsonl(), result)
    };
    let (trace_a, result_a) = run();
    let (trace_b, result_b) = run();
    assert_eq!(trace_a, trace_b, "fault schedule must be seed-pure");
    assert_eq!(result_a.session, result_b.session);
    assert!(
        result_a.session.retried > 0,
        "a 20% fault rate must exercise the retry policy"
    );
}

#[test]
fn transient_faults_cost_budget_not_quality() {
    let bus = TelemetryBus::disabled();
    let clean = Tuner::new(resilient_opts(7)).run(&executor("serial"), "serial", &bus);
    let faulty_ex = FaultyExecutor::new(executor("serial"), FaultPlan::transient(0.05, 0xFA_017));
    let faulty = Tuner::new(resilient_opts(7)).run(&faulty_ex, "serial", &bus);

    assert!(faulty.session.best_secs <= faulty.session.default_secs);
    let gap = clean.improvement_percent() - faulty.improvement_percent();
    assert!(
        gap < 5.0,
        "5% transient faults should cost at most a few points \
         (clean {:+.1}%, faulty {:+.1}%)",
        clean.improvement_percent(),
        faulty.improvement_percent()
    );
}

#[test]
fn killed_and_resumed_session_emits_an_identical_trace() {
    let ex = FaultyExecutor::new(executor("compress"), FaultPlan::transient(0.05, 99));
    let journal = temp("resume.jsonl");
    let trace_a = temp("trace-a.jsonl");
    let trace_b = temp("trace-b.jsonl");

    let mut opts = resilient_opts(5);
    opts.max_evaluations = Some(24);
    opts.checkpoint = Some(journal.clone());
    let bus = TelemetryBus::new().with(Arc::new(JsonlSink::create(&trace_a).expect("trace a")));
    let original = Tuner::new(opts.clone()).run(&ex, "compress", &bus);
    let full_journal = std::fs::read_to_string(&journal).expect("journal written");

    // "Kill" the session mid-flight: keep the header plus five trials.
    let prefix: Vec<&str> = full_journal.lines().take(6).collect();
    std::fs::write(&journal, prefix.join("\n") + "\n").expect("truncate journal");

    opts.resume = Some(journal.clone());
    let bus = TelemetryBus::new().with(Arc::new(JsonlSink::create(&trace_b).expect("trace b")));
    let resumed = Tuner::new(opts).run(&ex, "compress", &bus);

    assert_eq!(resumed.session, original.session);
    let a = std::fs::read_to_string(&trace_a).expect("read trace a");
    let b = std::fs::read_to_string(&trace_b).expect("read trace b");
    assert_eq!(a, b, "resumed trace must be byte-identical to the original");
    assert!(!a.is_empty());
    let rebuilt = std::fs::read_to_string(&journal).expect("read rebuilt journal");
    assert_eq!(rebuilt, full_journal, "checkpoint must rebuild the journal");

    for p in [journal, trace_a, trace_b] {
        let _ = std::fs::remove_file(p);
    }
}

/// Executor on which every configuration except the canonical default
/// fails deterministically — the worst case the quarantine circuit
/// breaker exists for.
struct HostileExecutor {
    inner: SimExecutor,
    allowed: u64,
}

impl Executor for HostileExecutor {
    fn measure(&self, config: &JvmConfig, seed: u64) -> Measurement {
        let mut m = self.inner.measure(config, seed);
        if config.fingerprint() != self.allowed {
            m.error = Some(TrialError::Crash("deterministic segfault".into()));
        }
        m
    }

    fn registry(&self) -> &Registry {
        self.inner.registry()
    }

    fn describe(&self) -> String {
        "hostile".into()
    }
}

#[test]
fn whole_batch_failures_degrade_to_the_incumbent() {
    let inner = executor("compress");
    let manipulator = HierarchicalManipulator::new();
    let mut default_config = JvmConfig::default_for(inner.registry());
    manipulator.canonicalize(&mut default_config);
    let ex = HostileExecutor {
        inner,
        allowed: default_config.fingerprint(),
    };

    // fail_fast off: a failing candidate burns all three repeats, so its
    // fingerprint crosses the quarantine streak in a single evaluation.
    let opts = TunerOptions::builder()
        .budget(SimDuration::from_mins(200))
        .seed(3)
        .workers(4)
        .batch(8)
        .fail_fast(false)
        .quarantine(QuarantinePolicy::default())
        .build()
        .expect("valid options");
    let result = Tuner::new(opts).run(&ex, "compress", &TelemetryBus::disabled());

    assert_eq!(
        result.session.best_secs, result.session.default_secs,
        "with every candidate failing, the incumbent must survive"
    );
    assert!(result.session.best_delta.is_empty());
    assert!(result.session.quarantined > 0, "failures must quarantine");
    assert!(
        result.session.evaluations <= 50,
        "three all-failed batches must end the session, not the budget \
         (saw {} evaluations)",
        result.session.evaluations
    );
}
